package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tpminer/internal/persist"
	"tpminer/internal/resilience"
)

// The TestChaos* suite is the randomized fault-schedule harness behind
// `make chaos`: it hammers a durable server with concurrent traffic
// while a seeded fault injector tears up the persistence layer, and
// checks the degradation contract on every single response. All tests
// here are deterministic per seed; the headline test logs its seed so a
// failure can be replayed exactly with TPMD_CHAOS_SEED.

// chaosSeed returns the run's fault-schedule seed: TPMD_CHAOS_SEED if
// set, otherwise the wall clock.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if env := os.Getenv("TPMD_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("TPMD_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed = %d (replay: TPMD_CHAOS_SEED=%d make chaos)", seed, seed)
	return seed
}

// chaosProfile is the fault mix for the randomized schedule: transient
// and permanent write errors, torn writes, failed fsyncs, sabotaged
// snapshots, and a sprinkle of latency on everything.
func chaosProfile(seed int64) *resilience.Profile {
	p := resilience.NewProfile(seed)
	p.Add(resilience.OpWALWrite, resilience.FaultRule{Prob: 0.10, Err: fmt.Errorf("injected: %w", syscall.EIO)})
	p.Add(resilience.OpWALWrite, resilience.FaultRule{Prob: 0.04, Err: fmt.Errorf("injected: %w", syscall.ENOSPC)})
	p.Add(resilience.OpWALWrite, resilience.FaultRule{Prob: 0.04, Err: fmt.Errorf("injected torn write: %w", syscall.EIO), Partial: true})
	p.Add(resilience.OpWALSync, resilience.FaultRule{Prob: 0.06, Err: fmt.Errorf("injected: %w", syscall.EIO)})
	p.Add(resilience.OpSnapshotWrite, resilience.FaultRule{Prob: 0.15, Err: fmt.Errorf("injected: %w", syscall.EIO)})
	p.Add(resilience.OpSnapshotRename, resilience.FaultRule{Prob: 0.05, Err: fmt.Errorf("injected: %w", syscall.EIO)})
	p.Add(resilience.OpAll, resilience.FaultRule{Prob: 0.05, Delay: time.Millisecond})
	return p
}

// noBackoff keeps the store's default retry budget but sleeps zero time
// between attempts, so the chaos run stays fast under -race.
var noBackoff = resilience.RetryPolicy{Sleep: func(time.Duration) {}}

// TestChaosRandomFaultSchedule runs concurrent per-dataset writers and
// readers against a durable server while the seeded fault profile is
// active, asserting on every response:
//
//   - mutations either ack (2xx) or fail with exactly 500
//     "persist_unavailable" (journal veto) or 503 "degraded" (breaker
//     open, Retry-After present) — never anything else;
//   - an acked mutation always yields a fresh ETag, never one seen
//     before anywhere in the run (the store-wide version never reuses);
//   - a failed mutation leaves the dataset byte-identical (commit-
//     before-visible);
//   - reads and mines keep succeeding throughout, degraded or not.
//
// Then the faults stop, the server must return to read-write on its own
// (no restart), and a crash-reopen without the injector must replay
// exactly the acknowledged state.
func TestChaosRandomFaultSchedule(t *testing.T) {
	seed := chaosSeed(t)
	toggle := resilience.NewToggle(chaosProfile(seed))

	dir := t.TempDir()
	ps, err := persist.Open(dir, persist.Options{
		Injector:    toggle,
		Retry:       noBackoff,
		WALMaxBytes: 16 << 10, // small: compactions happen mid-run, under fire
	})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	s := NewWithConfig(nil, Config{
		MaxConcurrentMines:    8,
		Persist:               ps,
		RecoveryProbeInterval: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Every ETag ever produced by an acked mutation, across all
	// datasets. An acked mutation must never mint one of these again.
	var etagMu sync.Mutex
	seenTags := map[string]bool{}
	freshTag := func(tag string) bool {
		etagMu.Lock()
		defer etagMu.Unlock()
		if tag == "" || seenTags[tag] {
			return false
		}
		seenTags[tag] = true
		return true
	}

	type finalState struct {
		exists bool
		tag    string
		body   string
	}
	const workers = 4
	const opsPerWorker = 40
	finals := make([]finalState, workers)

	toggle.Set(true)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			name := fmt.Sprintf("chaos-%d", w)
			url := ts.URL + "/v1/datasets/" + name
			exists := false
			lastTag, lastBody := "", ""

			// observe re-reads the dataset and folds the result into the
			// single-writer model of its state.
			observe := func(afterAck bool) {
				status, tag, body := getETag(t, url)
				if !exists {
					if status != http.StatusNotFound {
						t.Errorf("%s: read of deleted dataset: %d %q, want 404", name, status, body)
					}
					return
				}
				if status != http.StatusOK {
					t.Errorf("%s: read failed during chaos: %d %q, want 200", name, status, body)
					return
				}
				if afterAck {
					if !freshTag(tag) {
						t.Errorf("%s: acked mutation produced stale/reused ETag %q", name, tag)
					}
					lastTag, lastBody = tag, body
					return
				}
				if tag != lastTag || body != lastBody {
					t.Errorf("%s: dataset drifted without an acked mutation: tag %q→%q", name, lastTag, tag)
				}
			}

			// checkMutation enforces the mutation response contract and
			// reports whether the mutation was acknowledged.
			checkMutation := func(verb string, resp *http.Response, body string) bool {
				switch resp.StatusCode {
				case http.StatusOK, http.StatusCreated, http.StatusNoContent:
					return true
				case http.StatusInternalServerError, http.StatusServiceUnavailable:
					var eb ErrorEnvelope
					if err := json.Unmarshal([]byte(body), &eb); err != nil {
						t.Errorf("%s %s: %d body not an envelope: %q", verb, name, resp.StatusCode, body)
						return false
					}
					if resp.StatusCode == http.StatusInternalServerError && eb.Error.Code != "persist_unavailable" {
						t.Errorf("%s %s: 500 code %q, want persist_unavailable", verb, name, eb.Error.Code)
					}
					if resp.StatusCode == http.StatusServiceUnavailable {
						if eb.Error.Code != "degraded" {
							t.Errorf("%s %s: 503 code %q, want degraded", verb, name, eb.Error.Code)
						}
						if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
							t.Errorf("%s %s: 503 Retry-After %q, want integer >= 1", verb, name, resp.Header.Get("Retry-After"))
						}
					}
					return false
				default:
					t.Errorf("%s %s: unexpected status %d %q", verb, name, resp.StatusCode, body)
					return false
				}
			}

			for i := 0; i < opsPerWorker; i++ {
				if !exists {
					resp, body := do(t, "PUT", url, "text/csv", csvBody)
					if checkMutation("PUT", resp, body) {
						exists = true
						observe(true)
					}
					continue
				}
				switch op := rng.Intn(10); {
				case op < 3: // append
					resp, body := do(t, "POST", url+"/append", "text/csv", csvAppendBody)
					observe(checkMutation("APPEND", resp, body))
				case op < 5: // put (replace)
					resp, body := do(t, "PUT", url, "text/csv", csvBody)
					observe(checkMutation("PUT", resp, body))
				case op < 6: // delete
					resp, body := do(t, "DELETE", url, "", "")
					if checkMutation("DELETE", resp, body) {
						exists = false
					}
					observe(false)
				case op < 8: // plain read
					observe(false)
				default: // mine — must serve even while degraded
					resp, body := do(t, "POST", url+"/mine", "application/json", `{"min_count":1,"timeout_ms":5000}`)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("mine %s during chaos: %d %q, want 200", name, resp.StatusCode, body)
					}
				}
			}
			finals[w] = finalState{exists: exists, tag: lastTag, body: lastBody}
		}(w)
	}
	wg.Wait()

	// Faults stop. The server must find its way back to read-write by
	// itself — the readiness probe flips without any restart or nudge.
	toggle.Set(false)
	waitReady(t, ts.URL, 10*time.Second)

	// Every dataset accepts writes again, and the new ETags are fresh.
	for w := 0; w < workers; w++ {
		url := fmt.Sprintf("%s/v1/datasets/chaos-%d", ts.URL, w)
		if resp, body := do(t, "PUT", url, "text/csv", csvBody); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			t.Fatalf("put after recovery: %d %q", resp.StatusCode, body)
		}
		status, tag, body := getETag(t, url)
		if status != http.StatusOK {
			t.Fatalf("read after recovery: %d", status)
		}
		if !freshTag(tag) {
			t.Errorf("post-recovery mutation reused ETag %q", tag)
		}
		finals[w] = finalState{exists: true, tag: tag, body: body}
	}

	// Clean shutdown, then reopen the same dir with no injector: the
	// replayed state must be exactly what was acknowledged.
	ts.Close()
	s.Close()
	if err := ps.Close(); err != nil {
		t.Fatalf("persist.Close: %v", err)
	}
	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()
	for w, want := range finals {
		url := fmt.Sprintf("%s/v1/datasets/chaos-%d", ts2.URL, w)
		status, tag, body := getETag(t, url)
		if !want.exists {
			if status != http.StatusNotFound {
				t.Errorf("chaos-%d: deleted dataset resurrected after reopen: %d %q", w, status, body)
			}
			continue
		}
		if status != http.StatusOK || tag != want.tag || body != want.body {
			t.Errorf("chaos-%d after reopen: status %d tag %q, want 200 tag %q (body match: %v)",
				w, status, tag, want.tag, body == want.body)
		}
	}
}

// waitReady polls /v1/readyz until it reports ready or the deadline
// passes.
func waitReady(t *testing.T, baseURL string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := do(t, "GET", baseURL+"/v1/readyz", "", "")
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still not ready after %v: %d %q", timeout, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// blackoutInjector fails every persistence operation while on — WAL
// writes trip the breaker, and snapshot faults keep the recovery probe
// failing, pinning the server in degraded mode until the switch flips.
type blackoutInjector struct{ on atomic.Bool }

func (b *blackoutInjector) Fault(resilience.Op) resilience.Fault {
	if !b.on.Load() {
		return resilience.Fault{}
	}
	return resilience.Fault{Err: fmt.Errorf("injected blackout: %w", syscall.ENOSPC)}
}

// TestChaosDegradedLifecycle walks one full degraded episode
// deterministically and checks the contract at every stage: the 500
// that trips the breaker, 503 "degraded" mutations with Retry-After,
// reads and cached mines serving throughout, healthz/readyz semantics,
// automatic recovery, and ETag/version-floor continuity across
// enter-degraded → recover → restart.
func TestChaosDegradedLifecycle(t *testing.T) {
	inj := &blackoutInjector{}
	dir := t.TempDir()
	ps, err := persist.Open(dir, persist.Options{Injector: inj, Retry: noBackoff})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	s := NewWithConfig(nil, Config{
		MaxConcurrentMines:      4,
		Persist:                 ps,
		BreakerFailureThreshold: 1,
		RecoveryProbeInterval:   15 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	url := ts.URL + "/v1/datasets/alpha"
	if resp, body := do(t, "PUT", url, "text/csv", csvBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put alpha: %d %q", resp.StatusCode, body)
	}
	_, tag1, body1 := getETag(t, url)
	// Seed the result cache so the degraded-mode mine below is a hit.
	if resp, _ := do(t, "POST", url+"/mine", "application/json", `{"min_count":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed mine: %d", resp.StatusCode)
	}

	// Disk dies. ENOSPC is permanent (weight 2 >= threshold 1): the
	// first failing mutation returns the journal 500 and trips the
	// breaker in the same breath.
	inj.on.Store(true)
	resp, body := do(t, "PUT", url, "text/csv", csvAppendBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("put on dead disk: %d %q, want 500", resp.StatusCode, body)
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code != "persist_unavailable" || eb.RequestID == "" {
		t.Errorf("journal 500 envelope: %q (err=%v), want code persist_unavailable", body, err)
	}

	// Breaker open: mutations are refused up front with the stable
	// degraded code and a Retry-After hint; no disk I/O happens at all.
	resp, body = do(t, "PUT", url, "text/csv", csvBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("put while degraded: %d %q, want 503", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code != "degraded" {
		t.Errorf("degraded envelope: %q, want code degraded", body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 30 {
		t.Errorf("degraded Retry-After = %q, want integer in [1,30]", resp.Header.Get("Retry-After"))
	}
	if resp, _ := do(t, "DELETE", url, "", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("delete while degraded: %d, want 503", resp.StatusCode)
	}

	// The read path is untouched: summaries and cached mines serve.
	if status, tag, _ := getETag(t, url); status != http.StatusOK || tag != tag1 {
		t.Errorf("read while degraded: %d tag %q, want 200 %q", status, tag, tag1)
	}
	if resp, body := do(t, "POST", url+"/mine", "application/json", `{"min_count":2}`); resp.StatusCode != http.StatusOK {
		t.Errorf("cached mine while degraded: %d %q, want 200", resp.StatusCode, body)
	}

	// Liveness vs readiness: healthz stays 200 (the process is fine),
	// readyz flips to 503 so load balancers drain write traffic.
	if resp, body := do(t, "GET", ts.URL+"/v1/healthz", "", ""); resp.StatusCode != http.StatusOK || !strings.Contains(body, "read_only") {
		t.Errorf("healthz while degraded: %d %q, want 200 + mode read_only", resp.StatusCode, body)
	}
	if resp, body := do(t, "GET", ts.URL+"/v1/readyz", "", ""); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "read_only") {
		t.Errorf("readyz while degraded: %d %q, want 503 + mode read_only", resp.StatusCode, body)
	}

	// Disk returns; the background probe notices and reopens writes
	// with no restart and no operator action.
	inj.on.Store(false)
	waitReady(t, ts.URL, 5*time.Second)
	if resp, body := do(t, "GET", ts.URL+"/v1/healthz", "", ""); !strings.Contains(body, "read_write") {
		t.Errorf("healthz after recovery: %d %q, want mode read_write", resp.StatusCode, body)
	}
	resp, body = do(t, "PUT", url, "text/csv", csvAppendBody)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("put after recovery: %d %q", resp.StatusCode, body)
	}
	_, tag2, body2 := getETag(t, url)
	if tag2 == "" || tag2 == tag1 {
		t.Fatalf("post-recovery ETag %q not fresh (pre-degraded was %q)", tag2, tag1)
	}
	if body2 == body1 {
		t.Error("post-recovery body unchanged despite acked replace")
	}

	// The episode is visible in the metrics the chaos target watches.
	_, mbody := do(t, "GET", ts.URL+"/v1/metrics", "", "")
	m := parseMetrics(t, mbody)
	if m[`tpmd_resilience_breaker_trips_total`] < 1 {
		t.Error("breaker trip not counted")
	}
	if m[`tpmd_resilience_probes_total{outcome="ok"}`] < 1 {
		t.Error("successful recovery probe not counted")
	}
	if m[`tpmd_resilience_degraded_seconds_total`] <= 0 {
		t.Error("degraded episode duration not accounted")
	}
	if m[`tpmd_cache_degraded_hits_total`] < 1 {
		t.Error("cache hit served during degradation not counted")
	}
	if m[`tpmd_resilience_breaker_state`] != 0 {
		t.Errorf("breaker state gauge = %v after recovery, want 0 (closed)", m[`tpmd_resilience_breaker_state`])
	}

	// Restart on the same dir: the version floor carries across the
	// whole episode, so no pre- or post-degraded ETag is ever reissued.
	ts.Close()
	s.Close()
	if err := ps.Close(); err != nil {
		t.Fatalf("persist.Close: %v", err)
	}
	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()
	url2 := ts2.URL + "/v1/datasets/alpha"
	if status, tag, body := getETag(t, url2); status != http.StatusOK || tag != tag2 || body != body2 {
		t.Errorf("alpha after restart: %d tag %q, want 200 %q", status, tag, tag2)
	}
	if resp, _ := do(t, "PUT", url2, "text/csv", csvBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("put after restart: %d", resp.StatusCode)
	}
	if _, tag3, _ := getETag(t, url2); tag3 == tag1 || tag3 == tag2 {
		t.Errorf("post-restart mutation reused an old ETag: %q in {%q, %q}", tag3, tag1, tag2)
	}
}

// TestChaosAdmissionShed: deadline-aware admission sheds a queued mine
// whose deadline cannot outlast the queue (429 + shed counter), but
// parks one whose deadline can — and hands it the slot when it frees.
func TestChaosAdmissionShed(t *testing.T) {
	s, ts := newHardenedServer(t, Config{MaxConcurrentMines: 1})
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	s.mineSem <- struct{}{} // occupy the only slot
	resp, _ := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed-deadline mine: %d, want 429 shed", resp.StatusCode)
	}
	_, mbody := do(t, "GET", ts.URL+"/metrics", "", "")
	if parseMetrics(t, mbody)[`tpmd_resilience_shed_total`] < 1 {
		t.Error("shed not counted in tpmd_resilience_shed_total")
	}

	// A patient request parks instead, and proceeds once the slot frees.
	go func() {
		time.Sleep(100 * time.Millisecond)
		<-s.mineSem
	}()
	resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"timeout_ms":10000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parked mine after slot freed: %d %q, want 200", resp.StatusCode, body)
	}
}

// TestChaosParkedDisconnectNoLeak: a client that disconnects while its
// mine request is parked in admission must unpark the handler
// immediately; the goroutine count settles back to baseline. (Caching
// is disabled so the mine context follows the client connection — with
// caching on, parking is bounded by the job deadline instead.)
func TestChaosParkedDisconnectNoLeak(t *testing.T) {
	s, ts := newHardenedServer(t, Config{MaxConcurrentMines: 1, CacheBudgetBytes: -1})
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)
	baseline := runtime.NumGoroutine()

	s.mineSem <- struct{}{} // occupy the only slot: the next mine parks
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/datasets/demo/mine",
		strings.NewReader(`{"min_count":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	time.Sleep(150 * time.Millisecond) // let the request reach the parking lot
	cancel()                           // client walks away
	select {
	case err := <-errc:
		if err == nil {
			t.Error("canceled parked mine returned a response, want transport error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked mine did not unpark on client disconnect")
	}
	<-s.mineSem // release the slot only after the disconnect resolved

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after parked disconnect: %d running, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
