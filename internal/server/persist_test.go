package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tpminer/internal/persist"
)

// newPersistServer opens (or reopens) a durable server over dir.
func newPersistServer(t *testing.T, dir string) (*httptest.Server, *persist.Store) {
	t.Helper()
	ps, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	ts := httptest.NewServer(NewWithConfig(nil, Config{MaxConcurrentMines: 8, Persist: ps}).Handler())
	t.Cleanup(ts.Close)
	return ts, ps
}

// getETag fetches a dataset summary and returns (status, ETag, body).
func getETag(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, body := do(t, "GET", url, "", "")
	return resp.StatusCode, resp.Header.Get("ETag"), body
}

const csvAppendBody = `sequence_id,symbol,start,end
s9,A,50,54
s9,C,52,56
`

// TestRestartRoundTrip is the headline durability test: PUT, append,
// and DELETE datasets; restart the server against the same data dir
// (clean shutdown); and check identical contents, preserved versions
// (same strong ETags), vanished deletions, and a version counter that
// keeps climbing so post-restart ETags never collide with pre-restart
// ones.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts, ps := newPersistServer(t, dir)

	// Build state: alpha (put + append), beta (put), doomed (put + delete).
	if resp, body := do(t, "PUT", ts.URL+"/v1/datasets/alpha", "text/csv", csvBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put alpha: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, "POST", ts.URL+"/v1/datasets/alpha/append", "text/csv", csvAppendBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("append alpha: %d %s", resp.StatusCode, body)
	}
	do(t, "PUT", ts.URL+"/v1/datasets/beta", "text/csv", csvBody)
	do(t, "PUT", ts.URL+"/v1/datasets/doomed", "text/csv", csvBody)
	if resp, _ := do(t, "DELETE", ts.URL+"/v1/datasets/doomed", "", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete doomed: %d", resp.StatusCode)
	}

	_, alphaTag, alphaBody := getETag(t, ts.URL+"/v1/datasets/alpha")
	_, betaTag, _ := getETag(t, ts.URL+"/v1/datasets/beta")
	if alphaTag == "" || betaTag == "" {
		t.Fatal("missing pre-restart ETags")
	}

	// Clean shutdown: drain, flush, final snapshot.
	ts.Close()
	if err := ps.Close(); err != nil {
		t.Fatalf("persist.Close: %v", err)
	}

	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()

	// Contents and versions identical → identical summaries and ETags.
	status, tag, body := getETag(t, ts2.URL+"/v1/datasets/alpha")
	if status != http.StatusOK || body != alphaBody {
		t.Errorf("alpha after restart: %d %q, want body %q", status, body, alphaBody)
	}
	if tag != alphaTag {
		t.Errorf("alpha ETag changed across restart: %q → %q (version not preserved)", alphaTag, tag)
	}
	if _, tag, _ := getETag(t, ts2.URL+"/v1/datasets/beta"); tag != betaTag {
		t.Errorf("beta ETag changed across restart: %q → %q", betaTag, tag)
	}
	// If-None-Match across the restart still short-circuits.
	req, _ := http.NewRequest("GET", ts2.URL+"/v1/datasets/alpha", nil)
	req.Header.Set("If-None-Match", alphaTag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match with pre-restart ETag: %d, want 304", resp.StatusCode)
	}

	// The deleted dataset stays deleted.
	if status, _, _ := getETag(t, ts2.URL+"/v1/datasets/doomed"); status != http.StatusNotFound {
		t.Errorf("doomed after restart: %d, want 404", status)
	}

	// ETags change iff the dataset is mutated.
	if resp, _ := do(t, "POST", ts2.URL+"/v1/datasets/alpha/append", "text/csv", csvAppendBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("append after restart: %d", resp.StatusCode)
	}
	if _, tag, _ := getETag(t, ts2.URL+"/v1/datasets/alpha"); tag == alphaTag {
		t.Error("alpha ETag unchanged after a post-restart append")
	}
	if _, tag, _ := getETag(t, ts2.URL+"/v1/datasets/beta"); tag != betaTag {
		t.Error("beta ETag changed without a mutation")
	}

	// Versions are strictly monotonic across the restart: re-creating
	// the deleted dataset must not reuse any pre-restart version, so
	// its ETag differs from the original "doomed" at version N.
	doomedTags := map[string]bool{}
	for i := 0; i < 2; i++ {
		do(t, "PUT", ts2.URL+"/v1/datasets/doomed", "text/csv", csvBody)
		_, tag, _ := getETag(t, ts2.URL+"/v1/datasets/doomed")
		if doomedTags[tag] {
			t.Errorf("recreated dataset repeated ETag %q (version reuse)", tag)
		}
		doomedTags[tag] = true
	}
}

// TestRestartAfterCrash: the same guarantees with no clean shutdown —
// the persist store is simply abandoned, as a kill -9 would leave it.
// Every acknowledged mutation must still be there (fsync=always), and
// the version counter must keep climbing even though the last mutation
// was a delete.
func TestRestartAfterCrash(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newPersistServer(t, dir) // never Closed: the crash

	do(t, "PUT", ts.URL+"/v1/datasets/alpha", "text/csv", csvBody)
	do(t, "POST", ts.URL+"/v1/datasets/alpha/append", "text/csv", csvAppendBody)
	do(t, "PUT", ts.URL+"/v1/datasets/doomed", "text/csv", csvBody)
	_, alphaTag, alphaBody := getETag(t, ts.URL+"/v1/datasets/alpha")
	_, doomedTag, _ := getETag(t, ts.URL+"/v1/datasets/doomed")
	do(t, "DELETE", ts.URL+"/v1/datasets/doomed", "", "")
	ts.Close()

	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()
	status, tag, body := getETag(t, ts2.URL+"/v1/datasets/alpha")
	if status != http.StatusOK || body != alphaBody || tag != alphaTag {
		t.Errorf("alpha after crash: %d %q (tag %q), want body %q tag %q",
			status, body, tag, alphaBody, alphaTag)
	}
	if status, _, _ := getETag(t, ts2.URL+"/v1/datasets/doomed"); status != http.StatusNotFound {
		t.Errorf("deleted dataset resurrected after crash: %d", status)
	}
	// Re-create the deleted dataset: its version (hence ETag) must be
	// new — the delete's version bump survived the crash.
	do(t, "PUT", ts2.URL+"/v1/datasets/doomed", "text/csv", csvBody)
	if _, tag, _ := getETag(t, ts2.URL+"/v1/datasets/doomed"); tag == doomedTag {
		t.Errorf("recreated dataset reused pre-crash ETag %q", tag)
	}
}

// TestRestartMineConsistency: mining the recovered dataset returns the
// same patterns and the same mine ETag as before the restart (the
// cache key (name, version, options) is fully reconstructed).
func TestRestartMineConsistency(t *testing.T) {
	dir := t.TempDir()
	ts, ps := newPersistServer(t, dir)
	do(t, "PUT", ts.URL+"/v1/datasets/alpha", "text/csv", csvBody)
	mineReq := `{"min_count":2,"max_intervals":2}`
	resp, body := do(t, "POST", ts.URL+"/v1/datasets/alpha/mine", "application/json", mineReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %s", resp.StatusCode, body)
	}
	mineTag := resp.Header.Get("ETag")
	ts.Close()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()
	resp2, body2 := do(t, "POST", ts2.URL+"/v1/datasets/alpha/mine", "application/json", mineReq)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mine after restart: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("ETag"); got != mineTag {
		t.Errorf("mine ETag across restart: %q → %q", mineTag, got)
	}
	if pa, pb := patternsOf(t, body), patternsOf(t, body2); pa != pb {
		t.Errorf("patterns differ across restart:\n%s\nvs\n%s", pa, pb)
	}
}

// patternsOf extracts just the "patterns" array text for comparison,
// ignoring stats (elapsed times differ run to run) and cache fields.
func patternsOf(t *testing.T, body string) string {
	t.Helper()
	i := strings.Index(body, `"patterns"`)
	j := strings.Index(body, `"stats"`)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("unexpected mine body: %s", body)
	}
	return body[i:j]
}

// TestPersistedMutationsSurviveManyDatasets pushes enough distinct
// datasets through the journal to force at least one compaction, then
// crashes and checks every summary via the API.
func TestPersistedMutationsSurviveManyDatasets(t *testing.T) {
	dir := t.TempDir()
	ps, err := persist.Open(dir, persist.Options{WALMaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithConfig(nil, Config{MaxConcurrentMines: 8, Persist: ps}).Handler())
	want := map[string]string{}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("ds%02d", i)
		do(t, "PUT", ts.URL+"/v1/datasets/"+name, "text/csv", csvBody)
		if i%3 == 0 {
			do(t, "POST", ts.URL+"/v1/datasets/"+name+"/append", "text/csv", csvAppendBody)
		}
		_, _, body := getETag(t, ts.URL+"/v1/datasets/"+name)
		want[name] = body
	}
	ts.Close() // crash: no ps.Close()

	ts2, ps2 := newPersistServer(t, dir)
	defer ps2.Close()
	for name, body := range want {
		status, _, got := getETag(t, ts2.URL+"/v1/datasets/"+name)
		if status != http.StatusOK || got != body {
			t.Errorf("%s after crash: %d %q, want %q", name, status, got, body)
		}
	}
}
