package server

import (
	"errors"
	"log/slog"
	"sync"
	"time"

	"tpminer/internal/interval"
	"tpminer/internal/persist"
	"tpminer/internal/resilience"
)

// errDegraded is returned by the resilient journal while the circuit
// breaker is open: persistence is unavailable and mutations are being
// rejected. Handlers map it to 503 with the stable "degraded" code and a
// Retry-After hint; reads and cached mines keep serving throughout.
var errDegraded = errors.New("persistence degraded: server is read-only while the store recovers")

// resilientJournal wraps the persist store's journal with a circuit
// breaker and a background recovery probe, turning persistent disk
// trouble into graceful read-only degradation instead of an unbounded
// stream of failing writes:
//
//   - While the breaker is closed every mutation journals as before (the
//     store itself retries transient I/O internally).
//   - Repeated journal failures trip the breaker open. From then on
//     mutations fail fast with errDegraded — no disk I/O at all — while
//     reads, cached mines, and fresh mines over resident datasets keep
//     serving.
//   - A background prober periodically moves the breaker to half-open
//     and asks the store to prove itself (persist.Store.Probe re-commits
//     the acknowledged state as a snapshot). The first success closes
//     the breaker and the server returns to read-write on its own; no
//     operator action or restart is needed.
type resilientJournal struct {
	inner      *persist.Store
	br         *resilience.Breaker
	met        *resilienceMetrics
	logger     *slog.Logger
	probeEvery time.Duration

	mu        sync.Mutex
	probing   bool      // a probeLoop goroutine is live
	trippedAt time.Time // when the current degraded episode began

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newResilientJournal(inner *persist.Store, threshold int, probeEvery time.Duration, met *resilienceMetrics, logger *slog.Logger) *resilientJournal {
	return &resilientJournal{
		inner:      inner,
		br:         resilience.NewBreaker(threshold),
		met:        met,
		logger:     logger,
		probeEvery: probeEvery,
		stop:       make(chan struct{}),
	}
}

func (j *resilientJournal) LogPut(name string, version uint64, db *interval.Database) error {
	return j.do(func() error { return j.inner.LogPut(name, version, db) })
}

func (j *resilientJournal) LogAppend(name string, version uint64, add *interval.Database) error {
	return j.do(func() error { return j.inner.LogAppend(name, version, add) })
}

func (j *resilientJournal) LogDelete(name string, version uint64) error {
	return j.do(func() error { return j.inner.LogDelete(name, version) })
}

func (j *resilientJournal) LogJobPut(id string, version uint64, spec []byte) error {
	return j.do(func() error { return j.inner.LogJobPut(id, version, spec) })
}

func (j *resilientJournal) LogJobDelete(id string, version uint64) error {
	return j.do(func() error { return j.inner.LogJobDelete(id, version) })
}

func (j *resilientJournal) LogJobResult(id string, version uint64, result []byte) error {
	return j.do(func() error { return j.inner.LogJobResult(id, version, result) })
}

// do runs one journal operation through the breaker. Only the closed
// state admits writes; half-open is reserved for the background prober,
// so client traffic never races the recovery check.
func (j *resilientJournal) do(op func() error) error {
	if !j.br.Allow() {
		return errDegraded
	}
	err := op()
	if err == nil {
		j.br.Success()
		return nil
	}
	if j.br.Failure(resilience.IsPermanent(err)) {
		j.met.breakerTrips.Inc()
		j.met.breakerState.Set(int64(resilience.BreakerOpen))
		j.logger.Warn("persistence breaker tripped; entering read-only degraded mode",
			"error", err.Error(), "probe_interval", j.probeEvery.String())
		j.startProber()
	}
	return err
}

// degraded reports whether the server should be refusing mutations.
func (j *resilientJournal) degraded() bool {
	return j.br.State() != resilience.BreakerClosed
}

// startProber launches the recovery probe goroutine for this degraded
// episode, exactly once per episode.
func (j *resilientJournal) startProber() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.probing {
		return
	}
	j.probing = true
	j.trippedAt = time.Now()
	j.wg.Add(1)
	go j.probeLoop()
}

// probeLoop periodically asks the persist store to prove it can write
// again, closing the breaker on the first success. It exits when the
// breaker closes or the journal shuts down.
func (j *resilientJournal) probeLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
		}
		if !j.br.BeginProbe() {
			// Not open: either we already closed it (done) or a probe is
			// somehow mid-flight; only this goroutine probes, so treat a
			// closed breaker as the end of the episode.
			if j.br.State() == resilience.BreakerClosed {
				j.finishEpisode()
				return
			}
			continue
		}
		j.met.breakerState.Set(int64(resilience.BreakerHalfOpen))
		err := j.inner.Probe()
		if err != nil {
			j.met.probes.With("fail").Inc()
			j.br.ProbeResult(false)
			j.met.breakerState.Set(int64(resilience.BreakerOpen))
			j.logger.Warn("persistence recovery probe failed; staying degraded", "error", err.Error())
			continue
		}
		j.met.probes.With("ok").Inc()
		// Clear the episode bookkeeping *before* closing the breaker: the
		// instant ProbeResult(true) lands, a mutation can fail and trip
		// the breaker again, and that new episode must be able to start
		// its own prober.
		dur := j.finishEpisode()
		j.br.ProbeResult(true)
		j.met.breakerState.Set(int64(resilience.BreakerClosed))
		j.logger.Info("persistence recovered; resuming read-write",
			"degraded_for", dur.String())
		return
	}
}

// finishEpisode closes out the current degraded episode's bookkeeping
// and returns how long it lasted.
func (j *resilientJournal) finishEpisode() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.probing {
		return 0
	}
	j.probing = false
	dur := time.Since(j.trippedAt)
	j.met.degradedSeconds.Add(dur.Seconds())
	return dur
}

// close stops the prober and accounts any still-open degraded episode.
// Idempotent; the underlying persist store is owned by the caller of
// NewWithConfig and is not closed here.
func (j *resilientJournal) close() {
	j.stopOnce.Do(func() { close(j.stop) })
	j.wg.Wait()
	j.finishEpisode()
}
