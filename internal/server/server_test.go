package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

const csvBody = `sequence_id,symbol,start,end
s1,A,0,4
s1,B,2,6
s2,A,10,14
s2,B,12,16
s3,B,0,2
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	// A roomy semaphore: these tests exercise functional behavior, not
	// backpressure (hardening_test.go covers 429s deterministically).
	ts := httptest.NewServer(NewWithConfig(nil, Config{MaxConcurrentMines: 32}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/healthz", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t)

	// Create.
	resp, body := do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d %q", resp.StatusCode, body)
	}
	var sum DatasetSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sequences != 3 || sum.Intervals != 5 || sum.Symbols != 2 {
		t.Errorf("summary: %+v", sum)
	}

	// Replace returns 200.
	resp, _ = do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("replace: %d", resp.StatusCode)
	}

	// Get.
	resp, body = do(t, "GET", ts.URL+"/datasets/demo", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"sequences":3`) {
		t.Errorf("get: %d %q", resp.StatusCode, body)
	}

	// List.
	resp, body = do(t, "GET", ts.URL+"/datasets", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"name":"demo"`) {
		t.Errorf("list: %d %q", resp.StatusCode, body)
	}

	// Append (line format).
	resp, body = do(t, "POST", ts.URL+"/datasets/demo/append", "text/plain", "s4: A[0,4] B[2,6]\n")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"sequences":4`) {
		t.Errorf("append: %d %q", resp.StatusCode, body)
	}

	// Delete.
	resp, _ = do(t, "DELETE", ts.URL+"/datasets/demo", "", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", ts.URL+"/datasets/demo", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete: %d", resp.StatusCode)
	}
}

func TestMineTemporalEndpoint(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %q", resp.StatusCode, body)
	}
	var mr MineResponse
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Type != "temporal" || mr.Count == 0 || mr.Count != len(mr.Patterns) {
		t.Errorf("response: %+v", mr)
	}
	foundOverlap := false
	for _, p := range mr.Patterns {
		if p.Pattern == "A+ B+ A- B-" && p.Support == 2 && p.Relations == "A overlaps B" {
			foundOverlap = true
		}
	}
	if !foundOverlap {
		t.Errorf("overlap pattern missing: %+v", mr.Patterns)
	}
	if mr.Stats.Sequences != 3 || mr.Stats.MinCount != 2 {
		t.Errorf("stats: %+v", mr.Stats)
	}
}

func TestMineVariants(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	// Coincidence.
	resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"type":"coincidence","min_count":2}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "{A B}") {
		t.Errorf("coincidence: %d %q", resp.StatusCode, body)
	}

	// Top-k.
	resp, body = do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"top_k":2}`)
	var mr MineResponse
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || mr.Count != 2 {
		t.Errorf("topk: %d count=%d", resp.StatusCode, mr.Count)
	}

	// Maximal filter removes subsumed single intervals.
	resp, body = do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"filter":"maximal"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maximal: %d %q", resp.StatusCode, body)
	}
	if strings.Contains(body, `"pattern":"A+ A-"`) {
		t.Errorf("maximal kept subsumed pattern: %q", body)
	}
}

// TestMineParallelField: the "parallel" request field is honored —
// results match a serial mine exactly — and the server ceiling caps it
// rather than rejecting the request, mirroring timeout_ms semantics.
func TestMineParallelField(t *testing.T) {
	srv := NewWithConfig(nil, Config{MaxConcurrentMines: 32, MaxParallel: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	_, serialBody := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2}`)
	var serial MineResponse
	if err := json.Unmarshal([]byte(serialBody), &serial); err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{
		`{"min_count":2,"parallel":2}`,
		`{"min_count":2,"parallel":64}`, // above the ceiling: capped, not rejected
	} {
		resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallel mine %s: %d %q", req, resp.StatusCode, body)
		}
		var par MineResponse
		if err := json.Unmarshal([]byte(body), &par); err != nil {
			t.Fatal(err)
		}
		if par.Count != serial.Count || !reflect.DeepEqual(par.Patterns, serial.Patterns) {
			t.Errorf("parallel mine %s differs from serial:\n%+v\nvs\n%+v", req, par.Patterns, serial.Patterns)
		}
	}

	// Negative worker counts are invalid options.
	resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"parallel":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative parallel: %d %q", resp.StatusCode, body)
	}
}

// TestMineRequestParallelCap: the option conversion clamps at the
// configured ceiling.
func TestMineRequestParallelCap(t *testing.T) {
	cases := []struct{ req, ceil, want int }{
		{0, 4, 0}, {3, 4, 3}, {4, 4, 4}, {9, 4, 4},
	}
	for _, c := range cases {
		opt := MineRequest{MiningOptions: MiningOptions{MinCount: 1}, Parallel: c.req}.Options(c.ceil)
		if opt.Parallel != c.want {
			t.Errorf("options(%d) with ceiling %d: Parallel = %d, want %d", c.req, c.ceil, opt.Parallel, c.want)
		}
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	resp, body := do(t, "POST", ts.URL+"/datasets/demo/rules", "application/json",
		`{"min_count":2,"min_confidence":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rules: %d %q", resp.StatusCode, body)
	}
	var rules []WireRule
	if err := json.Unmarshal([]byte(body), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	for _, r := range rules {
		if r.Confidence < 0.5 || r.Confidence > 1 {
			t.Errorf("confidence out of range: %+v", r)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	cases := []struct {
		name         string
		method, path string
		ctype, body  string
		wantStatus   int
	}{
		{"mine missing dataset", "POST", "/datasets/nope/mine", "application/json", `{"min_count":1}`, 404},
		{"append missing dataset", "POST", "/datasets/nope/append", "text/plain", "A[1,2]\n", 404},
		{"delete missing dataset", "DELETE", "/datasets/nope", "", "", 404},
		{"bad upload format", "PUT", "/datasets/x", "application/xml", "<x/>", 415},
		{"bad csv", "PUT", "/datasets/x", "text/csv", "a,b\n", 400},
		{"mine no threshold", "POST", "/datasets/demo/mine", "application/json", `{}`, 400},
		{"mine bad type", "POST", "/datasets/demo/mine", "application/json", `{"type":"x","min_count":1}`, 400},
		{"mine bad filter", "POST", "/datasets/demo/mine", "application/json", `{"min_count":1,"filter":"x"}`, 400},
		{"mine unknown field", "POST", "/datasets/demo/mine", "application/json", `{"bogus":1}`, 400},
		{"rules bad confidence", "POST", "/datasets/demo/rules", "application/json", `{"min_count":1,"min_confidence":3}`, 400},
	}
	for _, c := range cases {
		resp, body := do(t, c.method, ts.URL+c.path, c.ctype, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d (want %d), body %q", c.name, resp.StatusCode, c.wantStatus, body)
		}
		if c.wantStatus >= 400 && !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error envelope missing: %q", c.name, body)
		}
	}
}

func TestConcurrentMineAndAppend(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	done := make(chan error, 20)
	for i := 0; i < 10; i++ {
		go func() {
			resp, _ := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json", `{"min_count":1}`)
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("mine status %d", resp.StatusCode)
				return
			}
			done <- nil
		}()
		go func(i int) {
			resp, _ := do(t, "POST", ts.URL+"/datasets/demo/append", "text/plain",
				fmt.Sprintf("x%d: A[0,4]\n", i))
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("append status %d", resp.StatusCode)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
