package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpminer/internal/remote"
)

// elapsedRE matches the one measured-not-computed field in a mine
// response. Everything else in a sharded response is deterministic, so
// the local-vs-remote byte comparison normalizes exactly this and
// nothing more.
var elapsedRE = regexp.MustCompile(`"elapsed_ms":\d+`)

func normalizeElapsed(body string) string {
	return elapsedRE.ReplaceAllString(body, `"elapsed_ms":0`)
}

// statsRE matches the whole stats object. Serial and sharded mining do
// different amounts of search work (nodes, scans, prunings), so
// serial-vs-sharded comparisons normalize the work counters while still
// comparing every pattern, support, and ordering byte.
var statsRE = regexp.MustCompile(`"stats":\{[^}]*\}`)

func normalizeStats(body string) string {
	return statsRE.ReplaceAllString(body, `"stats":{}`)
}

// mineKiller drops the TCP connection of every mine request while
// armed — a worker process dying mid-request, as seen by the client.
type mineKiller struct {
	inner http.Handler
	kill  atomic.Bool
}

func (h *mineKiller) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.kill.Load() && strings.HasSuffix(r.URL.Path, "/mine") {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestRemoteMineMatchesLocal is the acceptance test for distributed
// mining: a dataset mined through two remote HTTP worker processes must
// be byte-identical (after normalizing elapsed wall time) to both the
// in-process sharded server and the serial one — including when one
// worker is killed mid-request and its shard fails over — with no
// goroutines leaked.
func TestRemoteMineMatchesLocal(t *testing.T) {
	before := runtime.NumGoroutine()

	var killer *mineKiller
	var workerURLs []string
	var workerTS []*httptest.Server
	for i := 0; i < 2; i++ {
		var h http.Handler = remote.NewWorkerServer(remote.WorkerConfig{}).Handler()
		if i == 0 {
			killer = &mineKiller{inner: h}
			h = killer
		}
		ws := httptest.NewServer(h)
		workerTS = append(workerTS, ws)
		workerURLs = append(workerURLs, ws.URL)
	}

	base := Config{MaxConcurrentMines: 32, Shards: 4, ShardMinSeqs: 1}
	serial := NewWithConfig(nil, Config{MaxConcurrentMines: 32, Shards: 1})
	local := NewWithConfig(nil, base)
	remoteCfg := base
	remoteCfg.Workers = workerURLs
	remoteCfg.WorkerProbeInterval = -time.Second // no background probe: health changes only via RPC outcomes
	remoteSrv := NewWithConfig(nil, remoteCfg)

	tsSerial := httptest.NewServer(serial.Handler())
	tsLocal := httptest.NewServer(local.Handler())
	tsRemote := httptest.NewServer(remoteSrv.Handler())

	csv := shardedCSV()
	for _, ts := range []*httptest.Server{tsSerial, tsLocal, tsRemote} {
		if resp, body := do(t, "PUT", ts.URL+"/v1/datasets/d", "text/csv", csv); resp.StatusCode != http.StatusCreated {
			t.Fatalf("put: %d %q", resp.StatusCode, body)
		}
	}
	if _, part, _, ok := remoteSrv.store.snapshot("d"); !ok || part.NumShards() < 2 {
		t.Fatal("remote server did not shard the dataset; test is vacuous")
	}

	// readyz reports the full pool before anything has failed.
	if resp, body := do(t, "GET", tsRemote.URL+"/v1/readyz", "", ""); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"healthy":2`) || !strings.Contains(body, `"total":2`) {
		t.Errorf("readyz before faults: %d %q, want 200 with healthy 2/2", resp.StatusCode, body)
	}

	requests := []struct{ path, body string }{
		{"/v1/datasets/d/mine", `{"min_count":3}`},
		{"/v1/datasets/d/mine", `{"min_count":2,"max_span":20,"max_gap":10}`},
		{"/v1/datasets/d/mine", `{"min_count":2,"top_k":10}`},
		{"/v1/datasets/d/mine", `{"type":"coincidence","min_count":3}`},
		{"/v1/datasets/d/mine", `{"mode":"rules","min_count":2,"min_confidence":0.2}`},
	}
	compare := func(rq struct{ path, body string }) {
		t.Helper()
		respS, bodyS := do(t, "POST", tsSerial.URL+rq.path, "application/json", rq.body)
		respL, bodyL := do(t, "POST", tsLocal.URL+rq.path, "application/json", rq.body)
		respR, bodyR := do(t, "POST", tsRemote.URL+rq.path, "application/json", rq.body)
		if respS.StatusCode != http.StatusOK || respL.StatusCode != http.StatusOK || respR.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: serial %d, local %d, remote %d (%q)", rq.path, rq.body,
				respS.StatusCode, respL.StatusCode, respR.StatusCode, bodyR)
		}
		etagS, etagL, etagR := respS.Header.Get("ETag"), respL.Header.Get("ETag"), respR.Header.Get("ETag")
		if etagS == "" || etagS != etagL || etagS != etagR {
			t.Errorf("%s %s: ETag mismatch: serial %q, local %q, remote %q", rq.path, rq.body, etagS, etagL, etagR)
		}
		bodyS, bodyL, bodyR = normalizeElapsed(bodyS), normalizeElapsed(bodyL), normalizeElapsed(bodyR)
		// Remote workers must be invisible: byte-for-byte the in-process
		// sharded response.
		if bodyL != bodyR {
			t.Errorf("%s %s: remote differs from local sharded:\nlocal:  %s\nremote: %s", rq.path, rq.body, bodyL, bodyR)
		}
		// And sharding (either kind) preserves every pattern byte of the
		// serial answer; only the search-work counters may differ.
		if ns, nr := normalizeStats(bodyS), normalizeStats(bodyR); ns != nr {
			t.Errorf("%s %s: remote differs from serial:\nserial: %s\nremote: %s", rq.path, rq.body, ns, nr)
		}
		if !strings.Contains(bodyS, `"support":`) && !strings.Contains(bodyS, `"confidence"`) {
			t.Fatalf("%s %s: serial body has no results; test is vacuous: %s", rq.path, rq.body, bodyS)
		}
	}
	for _, rq := range requests {
		compare(rq)
	}

	// The shards debug endpoint shows the placement and push state the
	// mines above created.
	{
		resp, body := do(t, "GET", tsRemote.URL+"/v1/datasets/d/shards", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards endpoint: %d %q", resp.StatusCode, body)
		}
		var layout ShardLayout
		if err := json.Unmarshal([]byte(body), &layout); err != nil {
			t.Fatalf("shards body: %v (%q)", err, body)
		}
		if layout.Dataset != "d" || len(layout.Shards) < 2 || layout.Skew < 1 {
			t.Fatalf("shards layout: %+v", layout)
		}
		for _, sh := range layout.Shards {
			if sh.Worker != workerURLs[sh.ID%len(workerURLs)] {
				t.Errorf("shard %d assigned %q, want %q", sh.ID, sh.Worker, workerURLs[sh.ID%len(workerURLs)])
			}
			if !sh.Pushed {
				t.Errorf("shard %d not pushed after mining", sh.ID)
			}
			if sh.Sequences == 0 || sh.Load == 0 {
				t.Errorf("shard %d has empty layout row: %+v", sh.ID, sh)
			}
		}
		if layout.Workers == nil || layout.Workers.Healthy != 2 {
			t.Errorf("shards layout workers: %+v, want 2 healthy", layout.Workers)
		}
	}

	// Kill worker 0 mid-mine: fresh options miss every cache, the dying
	// worker's shards fail over to local re-mining, and the response must
	// still be byte-identical to the serial server's.
	killer.kill.Store(true)
	compare(struct{ path, body string }{"/v1/datasets/d/mine", `{"min_count":4}`})
	compare(struct{ path, body string }{"/v1/datasets/d/mine", `{"type":"coincidence","min_count":4}`})

	// The failover is observable: metrics count it, and readyz demotes
	// the dead worker.
	_, metrics := do(t, "GET", tsRemote.URL+"/v1/metrics", "", "")
	for _, want := range []string{"tpmd_remote_rpcs_total", "tpmd_remote_shard_pushes_total", "tpmd_remote_failovers_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if strings.Contains(metrics, "tpmd_remote_failovers_total 0") {
		t.Error("tpmd_remote_failovers_total is 0 after a worker died mid-mine")
	}
	if !strings.Contains(metrics, "tpmd_remote_worker_up 1") {
		t.Error("tpmd_remote_worker_up did not drop to 1 after the failover")
	}
	if resp, body := do(t, "GET", tsRemote.URL+"/v1/readyz", "", ""); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"healthy":1`) {
		t.Errorf("readyz after failover: %d %q, want 200 with 1 healthy worker", resp.StatusCode, body)
	}

	// A clean shutdown leaks nothing: close every server and wait for the
	// goroutine count to settle back.
	tsSerial.Close()
	tsLocal.Close()
	tsRemote.Close()
	serial.Close()
	local.Close()
	remoteSrv.Close()
	for _, ws := range workerTS {
		ws.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
