package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"tpminer/internal/interval"
)

// This file implements chunked streaming ingestion: POST
// /v1/datasets/{name}/events accepts newline-delimited JSON event
// intervals and batches them into versioned dataset appends. Batching is
// two-dimensional — a batch flushes when it reaches IngestFlushCount
// events (inline, while the triggering request is still being handled,
// so that request observes the append's error) or when the oldest
// buffered event reaches IngestFlushAge (on a timer, so a trickle of
// events still becomes visible without waiting for a full batch).

// ingestEvent is one NDJSON line: an interval destined for a sequence.
type ingestEvent struct {
	Seq    string `json:"seq"`
	Symbol string `json:"symbol"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
}

// ingestPool owns one batcher per dataset, created lazily on first
// ingest and kept for the server's lifetime (batchers are tiny when
// idle).
type ingestPool struct {
	s *Server

	mu       sync.Mutex
	batchers map[string]*ingestBatcher
	closed   bool
}

func (p *ingestPool) batcher(name string) (*ingestBatcher, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	b, ok := p.batchers[name]
	if !ok {
		b = &ingestBatcher{pool: p, dataset: name}
		p.batchers[name] = b
	}
	return b, true
}

// close stops age timers and flushes whatever is still buffered, so a
// clean shutdown loses no acknowledged events (their final append is
// journaled before Close returns).
func (p *ingestPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	batchers := make([]*ingestBatcher, 0, len(p.batchers))
	for _, b := range p.batchers {
		batchers = append(batchers, b)
	}
	p.mu.Unlock()
	for _, b := range batchers {
		b.shutdown()
	}
}

// ingestBatcher accumulates events for one dataset between flushes.
type ingestBatcher struct {
	pool    *ingestPool
	dataset string

	mu      sync.Mutex
	pending []ingestEvent
	timer   *time.Timer // age flush; armed iff pending is non-empty
	flushes uint64      // total flushes for this dataset (response telemetry)
	closed  bool
}

// add buffers events and flushes inline each time the buffer reaches the
// configured count. The returned version is the dataset version after
// the last inline flush (0 if everything is still buffered), and pending
// is the number of events left waiting on the age timer.
func (b *ingestBatcher) add(events []ingestEvent) (version uint64, pending int, flushes uint64, err error) {
	s := b.pool.s
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, 0, b.flushes, fmt.Errorf("server is shutting down")
	}
	b.pending = append(b.pending, events...)
	for len(b.pending) >= s.cfg.IngestFlushCount {
		batch := b.pending[:s.cfg.IngestFlushCount]
		rest := b.pending[s.cfg.IngestFlushCount:]
		ver, ferr := b.flushLocked(batch)
		if ferr != nil {
			// The failed batch stays buffered so the events are not lost;
			// the client sees the error and can retry or back off.
			return version, len(b.pending), b.flushes, ferr
		}
		version = ver
		b.pending = append(b.pending[:0], rest...)
	}
	b.scheduleLocked()
	return version, len(b.pending), b.flushes, nil
}

// scheduleLocked arms (or disarms) the age-flush timer to match the
// buffer state. Caller holds b.mu.
func (b *ingestBatcher) scheduleLocked() {
	if len(b.pending) == 0 || b.closed {
		if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
		return
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.pool.s.cfg.IngestFlushAge, b.ageFlush)
	}
}

// ageFlush is the timer path: flush whatever has accumulated. Errors
// here have no request to report to; the events stay buffered for the
// next attempt, but the buffer is capped so a persistently failing store
// cannot grow it without bound — overflow is dropped and counted.
func (b *ingestBatcher) ageFlush() {
	s := b.pool.s
	b.mu.Lock()
	defer b.mu.Unlock()
	b.timer = nil
	if b.closed || len(b.pending) == 0 {
		return
	}
	if _, err := b.flushLocked(b.pending); err != nil {
		if max := 8 * s.cfg.IngestFlushCount; len(b.pending) > max {
			dropped := len(b.pending) - max
			b.pending = b.pending[:max]
			s.met.ingestRejected.Add(uint64(dropped))
			s.logger.Warn("ingest buffer overflow while store unavailable; dropping oldest-pending events",
				"dataset", b.dataset, "dropped", dropped, "error", err.Error())
		}
		b.scheduleLocked()
		return
	}
	b.pending = b.pending[:0]
}

// flushLocked appends one batch to the store as a new dataset version,
// creating the dataset if this is its first event, then invalidates
// cached results and wakes any jobs watching the dataset. Caller holds
// b.mu.
func (b *ingestBatcher) flushLocked(batch []ingestEvent) (uint64, error) {
	s := b.pool.s
	add := eventsToDatabase(batch)
	_, ver, _, found, err := s.store.append(b.dataset, add)
	if err == nil && !found {
		// First events for this dataset: ingest auto-creates it.
		ver, _, _, err = s.store.put(b.dataset, add)
	}
	if err != nil {
		return 0, err
	}
	b.flushes++
	s.met.ingestEvents.Add(uint64(len(batch)))
	s.met.ingestBatches.Inc()
	s.invalidateResults(b.dataset)
	s.jobMgr.Notify(b.dataset, ver)
	return ver, nil
}

// shutdown flushes the remaining buffer once, best-effort, and marks the
// batcher closed.
func (b *ingestBatcher) shutdown() {
	s := b.pool.s
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return
	}
	if _, err := b.flushLocked(b.pending); err != nil {
		s.met.ingestRejected.Add(uint64(len(b.pending)))
		s.logger.Warn("dropping buffered ingest events at shutdown",
			"dataset", b.dataset, "dropped", len(b.pending), "error", err.Error())
	}
	b.pending = nil
}

// eventsToDatabase groups a batch into sequences. Events for the same
// sequence keep arrival order within the batch; intervals are sorted per
// sequence so the increment satisfies the store's validated-input
// invariant regardless of arrival order.
func eventsToDatabase(batch []ingestEvent) *interval.Database {
	index := make(map[string]int, len(batch))
	seqs := make([]interval.Sequence, 0, len(batch))
	for _, ev := range batch {
		iv := interval.Interval{Symbol: ev.Symbol, Start: interval.Time(ev.Start), End: interval.Time(ev.End)}
		i, ok := index[ev.Seq]
		if !ok {
			i = len(seqs)
			index[ev.Seq] = i
			seqs = append(seqs, interval.Sequence{ID: ev.Seq})
		}
		seqs[i].Intervals = append(seqs[i].Intervals, iv)
	}
	for i := range seqs {
		interval.SortIntervals(seqs[i].Intervals)
	}
	return &interval.Database{Sequences: seqs}
}

// ingestResponse acknowledges one ingest request. Accepted events are
// durable up to Version; Pending counts events still buffered awaiting
// the age flush (they become durable within IngestFlushAge).
type ingestResponse struct {
	Dataset  string `json:"dataset"`
	Accepted int    `json:"accepted"`
	Pending  int    `json:"pending"`
	Flushes  uint64 `json:"flushes"`
	Version  uint64 `json:"version,omitempty"`
}

// handleIngest streams NDJSON event intervals into a dataset. Each line
// is validated as it is read — the first bad line fails the whole
// request with its line number, before anything from the request is
// buffered — so a 202 means every line was accepted.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.requireContentType(w, r, "application/x-ndjson", "application/json") {
		return
	}
	name := r.PathValue("name")
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []ingestEvent
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev ingestEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			s.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("line %d: %w", line, err))
			return
		}
		if ev.Seq == "" {
			s.writeError(w, r, http.StatusBadRequest,
				&fieldError{field: "seq", msg: fmt.Sprintf("line %d: missing sequence id", line)})
			return
		}
		iv := interval.Interval{Symbol: ev.Symbol, Start: interval.Time(ev.Start), End: interval.Time(ev.End)}
		if err := iv.Valid(); err != nil {
			s.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("line %d: %w", line, err))
			return
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		s.writeBodyError(w, r, err)
		return
	}
	if len(events) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("no events in request body"))
		return
	}
	b, ok := s.ingest.batcher(name)
	if !ok {
		s.writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	ver, pending, flushes, err := b.add(events)
	if err != nil {
		s.writeStoreError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, ingestResponse{
		Dataset:  name,
		Accepted: len(events),
		Pending:  pending,
		Flushes:  flushes,
		Version:  ver,
	})
}
