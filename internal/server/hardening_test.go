package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newHardenedServer starts a test server with explicit resource bounds
// and returns the Server for white-box access (e.g. filling the mining
// semaphore deterministically).
func newHardenedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWithConfig(nil, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// explosiveCSV builds a dataset whose mining search space explodes:
// nSeq identical sequences of nSym pairwise-overlapping intervals. At
// min_count == nSeq an unbounded mine takes far longer than any test
// budget, so timeouts and soft budgets always trip.
func explosiveCSV(nSeq, nSym int) string {
	var b strings.Builder
	b.WriteString("sequence_id,symbol,start,end\n")
	for s := 0; s < nSeq; s++ {
		for i := 0; i < nSym; i++ {
			fmt.Fprintf(&b, "e%d,S%02d,%d,%d\n", s, i, i, nSym+i)
		}
	}
	return b.String()
}

func TestMineBackpressure429(t *testing.T) {
	s, ts := newHardenedServer(t, Config{MaxConcurrentMines: 1})
	do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", csvBody)

	// Occupy the only mining slot. The tight timeout_ms keeps the
	// deadline-aware admission from parking the request: with ~no
	// deadline left it is shed immediately.
	s.mineSem <- struct{}{}
	resp, body := do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy mine: %d %q, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Message == "" || eb.RequestID == "" {
		t.Errorf("429 envelope: %q (err=%v)", body, err)
	}
	if eb.Error.Code != "rate_limited" {
		t.Errorf("429 error code = %q, want rate_limited", eb.Error.Code)
	}

	// The rules endpoint shares the semaphore.
	resp, _ = do(t, "POST", ts.URL+"/datasets/demo/rules", "application/json",
		`{"min_count":2,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("busy rules: %d, want 429", resp.StatusCode)
	}

	// Releasing the slot restores service.
	<-s.mineSem
	resp, body = do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mine after release: %d %q", resp.StatusCode, body)
	}
}

func TestPanicRecovery500(t *testing.T) {
	s := NewWithConfig(nil, Config{})
	h := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	resp, body := do(t, "GET", ts.URL+"/anything", "", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d %q, want 500", resp.StatusCode, body)
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("500 body not JSON: %q", body)
	}
	if eb.Error.Code != "internal" || eb.Error.Message != "internal server error" || eb.RequestID == "" {
		t.Errorf("500 envelope: %+v", eb)
	}
	if got := resp.Header.Get("X-Request-ID"); got != eb.RequestID {
		t.Errorf("header request ID %q != body request ID %q", got, eb.RequestID)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newHardenedServer(t, Config{})

	// Client-supplied IDs are honored and echoed.
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-abc" {
		t.Errorf("echoed ID = %q, want trace-abc", got)
	}

	// Generated IDs land in error envelopes.
	resp2, body := do(t, "GET", ts.URL+"/datasets/nope", "", "")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("get missing: %d", resp2.StatusCode)
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.RequestID == "" {
		t.Errorf("404 envelope missing request_id: %q", body)
	}
	if eb.Error.Code != "not_found" {
		t.Errorf("404 error code = %q, want not_found", eb.Error.Code)
	}
	if got := resp2.Header.Get("X-Request-ID"); got != eb.RequestID {
		t.Errorf("header ID %q != body ID %q", got, eb.RequestID)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxBodyBytes: 64})

	big := explosiveCSV(4, 8) // well over 64 bytes
	resp, body := do(t, "PUT", ts.URL+"/datasets/demo", "text/csv", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: %d %q, want 413", resp.StatusCode, body)
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("413 body not JSON: %q", body)
	}
	if eb.Error.Code != "payload_too_large" || !strings.Contains(eb.Error.Message, "exceeds 64 bytes") || eb.RequestID == "" {
		t.Errorf("413 envelope: %+v", eb)
	}

	// JSON request bodies are bounded the same way.
	resp, body = do(t, "POST", ts.URL+"/datasets/demo/mine", "application/json",
		`{"min_count":2,"max_elements":1,"max_intervals":1,"max_patterns":100000}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized mine request: %d %q, want 413", resp.StatusCode, body)
	}
}

func TestMineTimeout504(t *testing.T) {
	_, ts := newHardenedServer(t, Config{})
	do(t, "PUT", ts.URL+"/datasets/big", "text/csv", explosiveCSV(3, 16))

	start := time.Now()
	resp, body := do(t, "POST", ts.URL+"/datasets/big/mine", "application/json",
		`{"min_count":3,"timeout_ms":50}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out mine: %d %q, want 504", resp.StatusCode, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Errorf("504 body: %q", body)
	}
	if elapsed > 2*time.Second {
		t.Errorf("50ms-timeout mine took %v", elapsed)
	}
}

func TestServerCeilingCapsTimeout(t *testing.T) {
	// The per-request timeout can never raise the server ceiling.
	_, ts := newHardenedServer(t, Config{MaxMineDuration: 50 * time.Millisecond})
	do(t, "PUT", ts.URL+"/datasets/big", "text/csv", explosiveCSV(3, 16))

	resp, body := do(t, "POST", ts.URL+"/datasets/big/mine", "application/json",
		`{"min_count":3,"timeout_ms":600000}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("ceiling-capped mine: %d %q, want 504", resp.StatusCode, body)
	}
}

func TestMineSoftBudgetsOnWire(t *testing.T) {
	_, ts := newHardenedServer(t, Config{})
	do(t, "PUT", ts.URL+"/datasets/big", "text/csv", explosiveCSV(3, 10))

	// max_patterns: partial results, 200, truncation flagged.
	resp, body := do(t, "POST", ts.URL+"/datasets/big/mine", "application/json",
		`{"min_count":3,"max_patterns":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("max_patterns mine: %d %q", resp.StatusCode, body)
	}
	var mr MineResponse
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Count == 0 || mr.Count > 5 {
		t.Errorf("count = %d, want 1..5", mr.Count)
	}
	if !mr.Stats.Truncated || mr.Stats.TruncatedBy != "max_patterns" {
		t.Errorf("stats: %+v", mr.Stats)
	}

	// time_budget_ms on an explosive dataset: 200 with truncation.
	do(t, "PUT", ts.URL+"/datasets/huge", "text/csv", explosiveCSV(3, 16))
	resp, body = do(t, "POST", ts.URL+"/datasets/huge/mine", "application/json",
		`{"min_count":3,"time_budget_ms":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("time_budget mine: %d %q", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Stats.Truncated || mr.Stats.TruncatedBy != "time_budget" {
		t.Errorf("stats: %+v", mr.Stats)
	}
}

func TestShutdownDrainsInflightMine(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/datasets/big", "text/csv", explosiveCSV(3, 16))

	type result struct {
		status int
		body   string
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		// A mine that runs ~400ms, then completes normally (soft
		// budget). No t helpers here: this is not the test goroutine.
		resp, err := http.Post(ts.URL+"/datasets/big/mine", "application/json",
			strings.NewReader(`{"min_count":3,"time_budget_ms":400}`))
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		ch <- result{resp.StatusCode, string(data), err}
	}()

	time.Sleep(100 * time.Millisecond) // let the mine start
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	res := <-ch
	if res.err != nil {
		t.Fatalf("in-flight mine failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight mine after shutdown: %d %q", res.status, res.body)
	}
	var mr MineResponse
	if err := json.Unmarshal([]byte(res.body), &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Stats.Truncated {
		t.Errorf("expected truncated stats from budgeted mine: %+v", mr.Stats)
	}
}
