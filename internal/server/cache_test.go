package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// doHdr is do with extra request headers.
func doHdr(t *testing.T, method, url, contentType, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestMineSingleFlight is the acceptance test for request coalescing: N
// concurrent identical mine requests execute exactly one miner run, and
// every caller gets the full response — one "miss", the rest
// "coalesced".
func TestMineSingleFlight(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 32})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	// The hook holds the one real miner run open until every other
	// request has joined the flight, so coalescing is deterministic, not
	// a timing accident.
	release := make(chan struct{})
	s.testMineHook = func() { <-release }

	const n = 8
	type result struct {
		status int
		cache  string
		body   string
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/datasets/demo/mine", "application/json",
				strings.NewReader(`{"min_count":2}`))
			if err != nil {
				results <- result{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			results <- result{resp.StatusCode, resp.Header.Get("X-Cache"), string(data)}
		}()
	}

	// Wait until the n-1 non-leaders have coalesced onto the flight,
	// then let the leader mine.
	deadline := time.Now().Add(10 * time.Second)
	for s.met.cache.coalesced.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced", s.met.cache.coalesced.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	var misses, coalesced int
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request failed: %d %q", r.status, r.body)
		}
		var mr MineResponse
		if err := json.Unmarshal([]byte(r.body), &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Count == 0 || mr.Count != len(mr.Patterns) {
			t.Errorf("coalesced caller got an incomplete response: %+v", mr)
		}
		if mr.Cache != r.cache {
			t.Errorf("body cache %q != X-Cache header %q", mr.Cache, r.cache)
		}
		switch r.cache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("unexpected cache outcome %q", r.cache)
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("outcomes: %d miss / %d coalesced, want 1 / %d", misses, coalesced, n-1)
	}
	// The decisive count: exactly one miner run happened.
	if runs := s.met.mineRuns.With("temporal", "ok").Value(); runs != 1 {
		t.Errorf("miner ran %d times for %d identical requests, want exactly 1", runs, n)
	}
	if s.met.cache.misses.Value() != 1 {
		t.Errorf("cache misses = %d, want 1", s.met.cache.misses.Value())
	}
}

// TestMineCachedAcrossRequests: a repeated identical request is served
// from cache (no second miner run), carries the same ETag, and an
// append flips both — the ETag changes and the miner runs again.
func TestMineCachedAcrossRequests(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	mineOnce := func() (*http.Response, MineResponse) {
		resp, body := do(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json", `{"min_count":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mine: %d %q", resp.StatusCode, body)
		}
		var mr MineResponse
		if err := json.Unmarshal([]byte(body), &mr); err != nil {
			t.Fatal(err)
		}
		return resp, mr
	}

	r1, m1 := mineOnce()
	if m1.Cache != "miss" {
		t.Errorf("first mine cache = %q, want miss", m1.Cache)
	}
	etag1 := r1.Header.Get("ETag")
	if etag1 == "" {
		t.Fatal("complete mine response without ETag")
	}

	r2, m2 := mineOnce()
	if m2.Cache != "hit" {
		t.Errorf("repeated mine cache = %q, want hit", m2.Cache)
	}
	if got := r2.Header.Get("ETag"); got != etag1 {
		t.Errorf("ETag changed without a dataset change: %q -> %q", etag1, got)
	}
	if m2.Count != m1.Count {
		t.Errorf("cached response differs: %d vs %d patterns", m2.Count, m1.Count)
	}
	if runs := s.met.mineRuns.With("temporal", "ok").Value(); runs != 1 {
		t.Errorf("repeat request ran the miner (%d runs)", runs)
	}

	// If-None-Match with the current ETag: 304, still no miner run.
	resp, _ := doHdr(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json",
		`{"min_count":2}`, map[string]string{"If-None-Match": etag1})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match mine: %d, want 304", resp.StatusCode)
	}

	// Appending changes the version: the ETag must flip and the next
	// mine must be a miss that runs the miner on the grown dataset.
	do(t, "POST", ts.URL+"/v1/datasets/demo/append", "text/plain", "s4: A[0,4] B[2,6]\n")
	r3, m3 := mineOnce()
	if m3.Cache != "miss" {
		t.Errorf("post-append mine cache = %q, want miss", m3.Cache)
	}
	if got := r3.Header.Get("ETag"); got == "" || got == etag1 {
		t.Errorf("ETag did not flip after append: %q", got)
	}
	if m3.Stats.Sequences != 4 {
		t.Errorf("post-append mine saw %d sequences, want 4", m3.Stats.Sequences)
	}
	if runs := s.met.mineRuns.With("temporal", "ok").Value(); runs != 2 {
		t.Errorf("post-append mine runs = %d, want 2", runs)
	}
	// The stale pre-append ETag no longer matches.
	resp, _ = doHdr(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json",
		`{"min_count":2}`, map[string]string{"If-None-Match": etag1})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: %d, want 200", resp.StatusCode)
	}
}

// TestTruncatedNeverCached: results cut short by a soft budget carry no
// ETag and are recomputed on every request.
func TestTruncatedNeverCached(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/big", "text/csv", explosiveCSV(3, 10))

	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/datasets/big/mine", "application/json",
			`{"min_count":3,"max_patterns":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("truncated mine %d: %d %q", i, resp.StatusCode, body)
		}
		var mr MineResponse
		if err := json.Unmarshal([]byte(body), &mr); err != nil {
			t.Fatal(err)
		}
		if !mr.Stats.Truncated {
			t.Fatalf("expected a truncated run: %+v", mr.Stats)
		}
		if mr.Cache != "miss" {
			t.Errorf("truncated mine %d served as %q, want miss", i, mr.Cache)
		}
		if et := resp.Header.Get("ETag"); et != "" {
			t.Errorf("truncated response carries ETag %q", et)
		}
	}
	if n := s.met.cache.hits.Value(); n != 0 {
		t.Errorf("truncated result produced %d cache hits", n)
	}
	if s.results.Len() != 0 {
		t.Errorf("truncated result stored in cache (len=%d)", s.results.Len())
	}
}

// TestRulesCached: the rules endpoint shares the caching machinery.
func TestRulesCached(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	req := `{"min_count":2,"min_confidence":0.5}`
	resp1, body1 := do(t, "POST", ts.URL+"/v1/datasets/demo/rules", "application/json", req)
	resp2, body2 := do(t, "POST", ts.URL+"/v1/datasets/demo/rules", "application/json", req)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("rules: %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if body1 != body2 {
		t.Error("cached rules response differs from the original")
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeated rules X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if runs := s.met.mineRuns.With("rules", "ok").Value(); runs != 1 {
		t.Errorf("rules miner ran %d times, want 1", runs)
	}
	// 304 with the returned ETag.
	etag := resp1.Header.Get("ETag")
	resp3, _ := doHdr(t, "POST", ts.URL+"/v1/datasets/demo/rules", "application/json", req,
		map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Errorf("rules If-None-Match: %d, want 304", resp3.StatusCode)
	}
}

// TestCacheDisabled: a negative budget turns caching and coalescing off;
// every request runs the miner and reports no cache outcome.
func TestCacheDisabled(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4, CacheBudgetBytes: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json", `{"min_count":2}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mine %d: %d %q", i, resp.StatusCode, body)
		}
		if h := resp.Header.Get("X-Cache"); h != "" {
			t.Errorf("X-Cache %q with caching disabled", h)
		}
		if strings.Contains(body, `"cache"`) {
			t.Errorf("cache field present with caching disabled: %q", body)
		}
	}
	if runs := s.met.mineRuns.With("temporal", "ok").Value(); runs != 2 {
		t.Errorf("miner runs = %d, want 2 (no memoization)", runs)
	}
}

// TestDatasetETagLifecycle covers the store edge cases on the wire: PUT
// overwrite bumps the version (fresh ETag, cached results invalidated),
// GET honors If-None-Match, and append to a missing dataset is a 404
// envelope.
func TestDatasetETagLifecycle(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp1, _ := do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)
	etag1 := resp1.Header.Get("ETag")
	if resp1.StatusCode != http.StatusCreated || etag1 == "" {
		t.Fatalf("put: %d etag %q", resp1.StatusCode, etag1)
	}

	// GET returns the same ETag; If-None-Match short-circuits to 304.
	respGet, _ := do(t, "GET", ts.URL+"/v1/datasets/demo", "", "")
	if got := respGet.Header.Get("ETag"); got != etag1 {
		t.Errorf("GET etag %q != PUT etag %q", got, etag1)
	}
	resp304, body304 := doHdr(t, "GET", ts.URL+"/v1/datasets/demo", "", "",
		map[string]string{"If-None-Match": etag1})
	if resp304.StatusCode != http.StatusNotModified || body304 != "" {
		t.Errorf("conditional GET: %d %q, want empty 304", resp304.StatusCode, body304)
	}

	// Populate the result cache, then overwrite the dataset: the version
	// bump must invalidate it even though name and options are unchanged.
	do(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json", `{"min_count":2}`)
	if s.results.Len() == 0 {
		t.Fatal("mine did not populate the cache")
	}
	resp2, _ := do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("overwrite: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got == "" || got == etag1 {
		t.Errorf("overwrite did not flip the ETag: %q", got)
	}
	if s.results.Len() != 0 {
		t.Errorf("overwrite left %d cached results for the old version", s.results.Len())
	}
	_, body := do(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json", `{"min_count":2}`)
	var mr MineResponse
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cache != "miss" {
		t.Errorf("mine after overwrite served %q, want miss", mr.Cache)
	}

	// Append to a dataset that does not exist: 404 with the envelope.
	respA, bodyA := do(t, "POST", ts.URL+"/v1/datasets/ghost/append", "text/plain", "g1: A[0,4]\n")
	if respA.StatusCode != http.StatusNotFound {
		t.Fatalf("append to missing dataset: %d %q", respA.StatusCode, bodyA)
	}
	var eb ErrorEnvelope
	if err := json.Unmarshal([]byte(bodyA), &eb); err != nil || eb.Error.Code != "not_found" {
		t.Errorf("append-404 envelope: %q (err=%v)", bodyA, err)
	}

	// Malformed append (End < Start) is rejected by the shared
	// incremental validation gate without touching the dataset.
	respB, bodyB := do(t, "POST", ts.URL+"/v1/datasets/demo/append", "text/plain", "b1: A[5,1]\n")
	if respB.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid append: %d %q, want 400", respB.StatusCode, bodyB)
	}
	respC, _ := do(t, "GET", ts.URL+"/v1/datasets/demo", "", "")
	if got := respC.Header.Get("ETag"); got != resp2.Header.Get("ETag") {
		t.Errorf("rejected append changed the dataset version: %q -> %q", resp2.Header.Get("ETag"), got)
	}
}

// TestDeleteDuringInflightMine: deleting (and even replacing) a dataset
// while a mine on its old snapshot is in flight must not disturb the
// mine — the store is copy-on-write, so the snapshot stays valid. Run
// under -race this is also the store's concurrency gate.
func TestDeleteDuringInflightMine(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	started := make(chan struct{}, 1)
	proceed := make(chan struct{})
	s.testMineHook = func() {
		started <- struct{}{}
		<-proceed
	}

	type result struct {
		status int
		body   string
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/datasets/demo/mine", "application/json",
			strings.NewReader(`{"min_count":2}`))
		if err != nil {
			ch <- result{-1, err.Error()}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		ch <- result{resp.StatusCode, string(data)}
	}()

	<-started
	// Delete the dataset out from under the in-flight mine, then re-use
	// the name with different data.
	resp, _ := do(t, "DELETE", ts.URL+"/v1/datasets/demo", "", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete during mine: %d", resp.StatusCode)
	}
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/plain", "z1: C[0,9]\n")
	close(proceed)

	res := <-ch
	if res.status != http.StatusOK {
		t.Fatalf("in-flight mine after delete: %d %q", res.status, res.body)
	}
	var mr MineResponse
	if err := json.Unmarshal([]byte(res.body), &mr); err != nil {
		t.Fatal(err)
	}
	// The mine must have seen its original snapshot, not the replacement.
	if mr.Stats.Sequences != 3 {
		t.Errorf("in-flight mine saw %d sequences, want the original 3", mr.Stats.Sequences)
	}
	// And a fresh mine on the re-created dataset sees the new data, not
	// a stale cache entry keyed to the deleted incarnation.
	_, body := do(t, "POST", ts.URL+"/v1/datasets/demo/mine", "application/json", `{"min_count":1}`)
	var fresh MineResponse
	if err := json.Unmarshal([]byte(body), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.Sequences != 1 {
		t.Errorf("post-recreate mine saw %d sequences, want 1", fresh.Stats.Sequences)
	}
}

// TestV1DropsLegacyElapsed: /v1 stats omit the deprecated "elapsed"
// duration string; the legacy alias keeps it. Both carry elapsed_ms.
func TestV1DropsLegacyElapsed(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/v1/datasets/e", "text/csv", csvBody)

	_, v1Body := do(t, "POST", ts.URL+"/v1/datasets/e/mine", "application/json", `{"min_count":2}`)
	if strings.Contains(v1Body, `"elapsed":`) {
		t.Errorf("/v1 response still carries legacy elapsed: %q", v1Body)
	}
	if !strings.Contains(v1Body, `"elapsed_ms"`) {
		t.Errorf("/v1 response missing elapsed_ms: %q", v1Body)
	}

	// Same request via the legacy alias — even served from cache, the
	// legacy field must reappear.
	_, legacyBody := do(t, "POST", ts.URL+"/datasets/e/mine", "application/json", `{"min_count":2}`)
	if !strings.Contains(legacyBody, `"elapsed":`) {
		t.Errorf("legacy response lost the elapsed field: %q", legacyBody)
	}
}

// TestLegacyAliasDeprecationHeaders: unversioned routes serve identically
// but mark themselves deprecated and point at the /v1 successor.
func TestLegacyAliasDeprecationHeaders(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/datasets/d", "text/csv", csvBody)

	resp, _ := do(t, "GET", ts.URL+"/datasets/d", "", "")
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/datasets/d") ||
		!strings.Contains(link, "successor-version") {
		t.Errorf("legacy Link header %q", link)
	}

	respV1, _ := do(t, "GET", ts.URL+"/v1/datasets/d", "", "")
	if respV1.Header.Get("Deprecation") != "" {
		t.Error("/v1 route carries a Deprecation header")
	}
	// Same resource through both surfaces: same ETag.
	if a, b := resp.Header.Get("ETag"), respV1.Header.Get("ETag"); a != b {
		t.Errorf("legacy and v1 ETags differ: %q vs %q", a, b)
	}
}

// TestV1ErrorEnvelopeShape: every error class carries the uniform
// envelope with a stable code on the /v1 surface.
func TestV1ErrorEnvelopeShape(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/v1/datasets/demo", "text/csv", csvBody)

	cases := []struct {
		name         string
		method, path string
		body         string
		wantStatus   int
		wantCode     string
		wantField    string
	}{
		{"not found", "GET", "/v1/datasets/nope", "", 404, "not_found", ""},
		{"bad field", "POST", "/v1/datasets/demo/mine", `{"min_support":-1}`, 400, "invalid_request", "min_support"},
		{"bad type", "POST", "/v1/datasets/demo/mine", `{"type":"x","min_count":1}`, 400, "invalid_request", "type"},
		{"rules field", "POST", "/v1/datasets/demo/rules", `{"min_count":1,"min_lift":-1}`, 400, "invalid_request", "min_lift"},
	}
	for _, c := range cases {
		ctype := ""
		if c.body != "" {
			ctype = "application/json"
		}
		resp, body := do(t, c.method, ts.URL+c.path, ctype, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%q)", c.name, resp.StatusCode, c.wantStatus, body)
			continue
		}
		var eb ErrorEnvelope
		if err := json.Unmarshal([]byte(body), &eb); err != nil {
			t.Errorf("%s: body %q not an envelope: %v", c.name, body, err)
			continue
		}
		if eb.Error.Code != c.wantCode || eb.Error.Message == "" || eb.RequestID == "" {
			t.Errorf("%s: envelope %+v, want code %q", c.name, eb, c.wantCode)
		}
		if eb.Error.Field != c.wantField {
			t.Errorf("%s: field %q, want %q", c.name, eb.Error.Field, c.wantField)
		}
	}
}

// TestConcurrentMineAppendDeleteChurn hammers all mutating routes against
// mines concurrently; under -race this is the end-to-end store/cache
// concurrency gate.
func TestConcurrentMineAppendDeleteChurn(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/v1/datasets/churn", "text/csv", csvBody)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 4 {
				case 0:
					do(t, "POST", ts.URL+"/v1/datasets/churn/mine", "application/json", `{"min_count":1}`)
				case 1:
					do(t, "POST", ts.URL+"/v1/datasets/churn/append", "text/plain",
						fmt.Sprintf("c%d-%d: A[0,4]\n", g, i))
				case 2:
					do(t, "DELETE", ts.URL+"/v1/datasets/churn", "", "")
					do(t, "PUT", ts.URL+"/v1/datasets/churn", "text/csv", csvBody)
				case 3:
					do(t, "GET", ts.URL+"/v1/datasets/churn", "", "")
				}
			}
		}(g)
	}
	wg.Wait()
}
