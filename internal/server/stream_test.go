package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tpminer/internal/jobs"
	"tpminer/internal/persist"
)

// newStreamServer builds a server tuned for streaming tests: tiny flush
// thresholds and debounce so ingestion and job runs settle in
// milliseconds. It returns the Server itself (so tests can Close it and
// reach the jobs manager) alongside the HTTP front end.
func newStreamServer(t *testing.T, ps *persist.Store, queue int) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewWithConfig(nil, Config{
		MaxConcurrentMines: 8,
		Persist:            ps,
		IngestFlushCount:   4,
		IngestFlushAge:     20 * time.Millisecond,
		JobDebounce:        5 * time.Millisecond,
		SSESubscriberQueue: queue,
		SSEHeartbeat:       100 * time.Millisecond,
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

// sseClient is a minimal text/event-stream reader over one connection.
type sseClient struct {
	cancel context.CancelFunc
	body   interface{ Close() error }
	sc     *bufio.Scanner
}

func dialSSE(t *testing.T, url string, lastEventID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("dial SSE: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("dial SSE: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("dial SSE: Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &sseClient{cancel: cancel, body: resp.Body, sc: sc}
}

func (c *sseClient) close() {
	c.cancel()
	c.body.Close()
}

// next reads one event (skipping heartbeats), failing the test after
// the deadline.
func (c *sseClient) next(t *testing.T, timeout time.Duration) (id uint64, event string, data []byte) {
	t.Helper()
	done := make(chan struct{})
	var ok bool
	go func() {
		defer close(done)
		for c.sc.Scan() {
			line := c.sc.Text()
			switch {
			case line == "":
				if event != "" {
					ok = true
					return
				}
				id, event, data = 0, "", nil
			case strings.HasPrefix(line, ":"):
				// heartbeat
			case strings.HasPrefix(line, "id: "):
				id, _ = strconv.ParseUint(line[4:], 10, 64)
			case strings.HasPrefix(line, "event: "):
				event = line[7:]
			case strings.HasPrefix(line, "data: "):
				data = append(data, line[6:]...)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		c.cancel() // unblocks the scanner goroutine
		<-done
		t.Fatalf("no SSE event within %v", timeout)
	}
	if !ok {
		t.Fatalf("SSE stream ended: %v", c.sc.Err())
	}
	return id, event, data
}

// ndjsonWave renders count sequences of exactly 4 events each, starting
// at sequence number from. Symbol choice varies with the wave so
// consecutive waves both add patterns and change supports.
func ndjsonWave(from, count int, extra string) string {
	var b strings.Builder
	for i := from; i < from+count; i++ {
		seq := fmt.Sprintf("s%04d", i)
		fmt.Fprintf(&b, `{"seq":%q,"symbol":"A","start":0,"end":10}`+"\n", seq)
		fmt.Fprintf(&b, `{"seq":%q,"symbol":"B","start":5,"end":15}`+"\n", seq)
		fmt.Fprintf(&b, `{"seq":%q,"symbol":%q,"start":20,"end":30}`+"\n", seq, extra)
		fmt.Fprintf(&b, `{"seq":%q,"symbol":"A","start":25,"end":28}`+"\n", seq)
	}
	return b.String()
}

// jobPatternsOf converts a batch mine response to the jobs-package
// pattern form, using the same key and body encoding as the job runner.
func jobPatternsOf(t *testing.T, mineBody string) []jobs.Pattern {
	t.Helper()
	var resp MineResponse
	if err := json.Unmarshal([]byte(mineBody), &resp); err != nil {
		t.Fatalf("mine response: %v", err)
	}
	out := make([]jobs.Pattern, 0, len(resp.Patterns))
	for _, mp := range resp.Patterns {
		body, err := json.Marshal(mp)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, jobs.Pattern{Key: minedPatternKey(mp), Support: mp.Support, Body: body})
	}
	return out
}

func sortPatterns(ps []jobs.Pattern) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}

// expectSamePatterns asserts two pattern sets are identical as sets —
// same keys, same supports, byte-identical bodies.
func expectSamePatterns(t *testing.T, label string, got, want []jobs.Pattern) {
	t.Helper()
	sortPatterns(got)
	sortPatterns(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Support != want[i].Support ||
			string(got[i].Body) != string(want[i].Body) {
			t.Fatalf("%s: pattern %d differs:\n got  %s sup=%d %s\n want %s sup=%d %s",
				label, i, got[i].Key, got[i].Support, got[i].Body,
				want[i].Key, want[i].Support, want[i].Body)
		}
	}
}

const streamJobSpec = `{"id":"live","dataset":"stream",
	"mine":{"mode":"temporal","min_count":2,"window":{"kind":"sliding","count":40}},
	"debounce_ms":5}`

const streamMineSpec = `{"mode":"temporal","min_count":2,"window":{"kind":"sliding","count":40}}`

// waitJobVersion polls the job status until its last mined version
// reaches want.
func waitJobVersion(t *testing.T, baseURL string, want uint64) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := do(t, "GET", baseURL+"/v1/jobs/live", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d %s", resp.StatusCode, body)
		}
		var st jobs.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("job status: %v", err)
		}
		if st.Version >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached version %d: %+v", want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamingEndToEnd is the acceptance test for streaming ingestion
// plus continuous mining: NDJSON events flow in while a sliding-window
// job is live; the cumulative application of its SSE deltas must equal
// a fresh batch mine of the same window byte-for-byte, and the job and
// its last result must survive a clean server restart, including
// Last-Event-ID resume across it.
func TestStreamingEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ps, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newStreamServer(t, ps, 0)

	if resp, body := do(t, "POST", ts.URL+"/v1/jobs", "application/json", streamJobSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: %d %s", resp.StatusCode, body)
	} else if loc := resp.Header.Get("Location"); loc != "/v1/jobs/live" {
		t.Fatalf("create job: Location %q", loc)
	}

	sse := dialSSE(t, ts.URL+"/v1/jobs/live/events", "")
	defer sse.close()

	// Three ingest waves; every wave is whole 4-event sequences, so with
	// IngestFlushCount=4 each request flushes completely inline
	// (pending must be 0) and reports the version of its last flush.
	var lastVersion uint64
	for wave, extra := range []string{"C", "C", "D"} {
		resp, body := do(t, "POST", ts.URL+"/v1/datasets/stream/events", "application/x-ndjson",
			ndjsonWave(wave*20, 20, extra))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest wave %d: %d %s", wave, resp.StatusCode, body)
		}
		var ack struct {
			Accepted int    `json:"accepted"`
			Pending  int    `json:"pending"`
			Version  uint64 `json:"version"`
		}
		if err := json.Unmarshal([]byte(body), &ack); err != nil {
			t.Fatal(err)
		}
		if ack.Accepted != 80 || ack.Pending != 0 || ack.Version == 0 {
			t.Fatalf("ingest wave %d ack: %+v", wave, ack)
		}
		lastVersion = ack.Version
	}

	st := waitJobVersion(t, ts.URL, lastVersion)
	if st.RunSeq == 0 || st.LastError != "" {
		t.Fatalf("job after ingest: %+v", st)
	}

	// Fresh batch mine of the same window, same spec: the reference.
	mineResp, mineBody := do(t, "POST", ts.URL+"/v1/datasets/stream/mine", "application/json", streamMineSpec)
	if mineResp.StatusCode != http.StatusOK {
		t.Fatalf("batch mine: %d %s", mineResp.StatusCode, mineBody)
	}
	want := jobPatternsOf(t, mineBody)
	if len(want) == 0 {
		t.Fatal("batch mine found no patterns; test data is broken")
	}

	// Apply the deltas cumulatively until the job's last run.
	var cumulative []jobs.Pattern
	var lastID uint64
	sawDelta := false
	for {
		id, event, data := sse.next(t, 5*time.Second)
		if event != jobs.EventDelta {
			t.Fatalf("unexpected event %q before first delta", event)
		}
		var d jobs.Delta
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatalf("delta: %v", err)
		}
		cumulative = jobs.Apply(cumulative, d)
		if len(cumulative) != d.Total {
			t.Fatalf("delta run=%d: applied set has %d patterns, Total says %d", d.RunSeq, len(cumulative), d.Total)
		}
		sawDelta = true
		lastID = id
		if d.Version == lastVersion {
			break
		}
	}
	if !sawDelta {
		t.Fatal("no deltas received")
	}
	expectSamePatterns(t, "cumulative deltas vs batch mine", cumulative, want)

	// The stored latest result agrees too, and carries an ETag.
	resResp, resBody := do(t, "GET", ts.URL+"/v1/jobs/live/result", "", "")
	if resResp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d %s", resResp.StatusCode, resBody)
	}
	etag := resResp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("job result has no ETag")
	}
	var res jobs.Result
	if err := json.Unmarshal([]byte(resBody), &res); err != nil {
		t.Fatal(err)
	}
	expectSamePatterns(t, "stored result vs batch mine", res.Patterns, want)

	// Clean restart: jobs and their last results are journaled.
	sse.close()
	ts.Close()
	svc.Close()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	ps2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newStreamServer(t, ps2, 0)

	resp, body := do(t, "GET", ts2.URL+"/v1/jobs/live", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job after restart: %d %s", resp.StatusCode, body)
	}
	var st2 jobs.Status
	if err := json.Unmarshal([]byte(body), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.RunSeq != res.RunSeq {
		t.Fatalf("job run seq after restart: %d, want %d", st2.RunSeq, res.RunSeq)
	}
	resp, body2 := do(t, "GET", ts2.URL+"/v1/jobs/live/result", "", "")
	if resp.StatusCode != http.StatusOK || body2 != resBody {
		t.Fatalf("job result after restart: %d; body changed: %v", resp.StatusCode, body2 != resBody)
	}
	if tag2 := resp.Header.Get("ETag"); tag2 != etag {
		t.Fatalf("result ETag after restart: %q, want %q", tag2, etag)
	}

	// Last-Event-ID resume across the restart: the replay ring died with
	// the process, so a resumer behind the current run gets one full
	// "result" snapshot to rebase on — identical to the stored result.
	resume := dialSSE(t, ts2.URL+"/v1/jobs/live/events", strconv.FormatUint(lastID-1, 10))
	id, event, data := resume.next(t, 5*time.Second)
	if event != jobs.EventResult {
		t.Fatalf("resume after restart: got %q event, want %q", event, jobs.EventResult)
	}
	if id != res.RunSeq {
		t.Fatalf("resume snapshot id %d, want %d", id, res.RunSeq)
	}
	var snap jobs.Result
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	expectSamePatterns(t, "restart resume snapshot", snap.Patterns, want)

	// New ingest after the restart produces a delta diffed against the
	// restored state — the stream continues, not restarts.
	if resp, body := do(t, "POST", ts2.URL+"/v1/datasets/stream/events", "application/x-ndjson",
		ndjsonWave(60, 20, "E")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart ingest: %d %s", resp.StatusCode, body)
	}
	_, event, data = resume.next(t, 5*time.Second)
	if event != jobs.EventDelta {
		t.Fatalf("post-restart event: %q, want delta", event)
	}
	var d jobs.Delta
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.RunSeq != res.RunSeq+1 {
		t.Fatalf("post-restart delta run %d, want %d", d.RunSeq, res.RunSeq+1)
	}
	rebased := jobs.Apply(snap.Patterns, d)
	mineResp, mineBody = do(t, "POST", ts2.URL+"/v1/datasets/stream/mine", "application/json", streamMineSpec)
	if mineResp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart batch mine: %d %s", mineResp.StatusCode, mineBody)
	}
	expectSamePatterns(t, "post-restart delta vs batch mine", rebased, jobPatternsOf(t, mineBody))
	resume.close()
}

// TestSSEClientDisconnectNoLeak: subscribers that vanish must leave no
// handler goroutine and no registration behind.
func TestSSEClientDisconnectNoLeak(t *testing.T) {
	_, ts := newStreamServer(t, nil, 0)
	if resp, body := do(t, "POST", ts.URL+"/v1/jobs", "application/json", streamJobSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: %d %s", resp.StatusCode, body)
	}
	do(t, "POST", ts.URL+"/v1/datasets/stream/events", "application/x-ndjson", ndjsonWave(0, 4, "C"))
	waitJobVersion(t, ts.URL, 1)

	baseline := runtime.NumGoroutine()
	clients := make([]*sseClient, 0, 8)
	for i := 0; i < 8; i++ {
		clients = append(clients, dialSSE(t, ts.URL+"/v1/jobs/live/events", ""))
	}
	// Every subscriber gets the snapshot backlog; read it to prove the
	// streams are live before tearing them down.
	for _, c := range clients {
		if _, event, _ := c.next(t, 5*time.Second); event != jobs.EventResult {
			t.Fatalf("backlog event %q, want result", event)
		}
	}
	for _, c := range clients {
		c.close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := do(t, "GET", ts.URL+"/v1/jobs/live", "", "")
		var st jobs.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("job status: %d %s", resp.StatusCode, body)
		}
		if st.Subscribers == 0 && runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %d subscribers, %d goroutines (baseline %d)",
				st.Subscribers, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// blockingWriter is an http.ResponseWriter whose Write parks until the
// test releases it — a subscriber whose connection has stopped
// accepting bytes, seen from the handler's side.
type blockingWriter struct {
	mu      sync.Mutex
	header  http.Header
	release chan struct{}
	wrote   chan struct{} // closed on first blocked write
	once    sync.Once
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{
		header:  make(http.Header),
		release: make(chan struct{}),
		wrote:   make(chan struct{}),
	}
}

func (w *blockingWriter) Header() http.Header { return w.header }
func (w *blockingWriter) WriteHeader(int)     {}
func (w *blockingWriter) Flush()              {}
func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.wrote) })
	<-w.release
	return len(p), nil
}

// TestSSESlowConsumerDroppedHTTP: with a queue of one, a subscriber
// whose connection stops draining is dropped by the publisher — its
// channel closes, the handler returns, and the drop is accounted — while
// the job keeps running.
func TestSSESlowConsumerDroppedHTTP(t *testing.T) {
	svc, ts := newStreamServer(t, nil, 1)
	if resp, body := do(t, "POST", ts.URL+"/v1/jobs", "application/json", streamJobSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: %d %s", resp.StatusCode, body)
	}
	do(t, "POST", ts.URL+"/v1/datasets/stream/events", "application/x-ndjson", ndjsonWave(0, 4, "C"))
	waitJobVersion(t, ts.URL, 1)

	w := newBlockingWriter()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "/v1/jobs/live/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.SetPathValue("id", "live")
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.handleJobEvents(w, req)
	}()

	// The backlog snapshot is the first write; it parks the handler.
	select {
	case <-w.wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never wrote the backlog")
	}

	// Each wave bumps the version and publishes a delta. The handler is
	// stuck mid-write, so the first delta sits in the queue (capacity 1)
	// and a later one finds it full: drop.
	deadline := time.Now().Add(10 * time.Second)
	for wave := 1; ; wave++ {
		do(t, "POST", ts.URL+"/v1/datasets/stream/events", "application/x-ndjson", ndjsonWave(wave*4, 4, "C"))
		_, body := do(t, "GET", ts.URL+"/v1/jobs/live", "", "")
		var st jobs.Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Dropped >= 1 {
			if st.Subscribers != 0 {
				t.Fatalf("dropped subscriber still registered: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow consumer never dropped: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Release the parked write: the handler must observe its closed
	// channel and return promptly.
	close(w.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after the drop")
	}

	// The job itself is unaffected: a fresh subscriber streams fine.
	fresh := dialSSE(t, ts.URL+"/v1/jobs/live/events", "")
	defer fresh.close()
	if _, event, _ := fresh.next(t, 5*time.Second); event != jobs.EventResult {
		t.Fatalf("fresh subscriber after drop: event %q", event)
	}
}

// TestJobDeleteIsDurable: a deleted job must stay deleted across a
// restart — the tombstone is journaled like any other mutation.
func TestJobDeleteIsDurable(t *testing.T) {
	dir := t.TempDir()
	ps, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newStreamServer(t, ps, 0)
	if resp, body := do(t, "POST", ts.URL+"/v1/jobs", "application/json", streamJobSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, "POST", ts.URL+"/v1/jobs", "application/json", streamJobSpec); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate job: %d %s (want 409)", resp.StatusCode, body)
	}
	if resp, _ := do(t, "DELETE", ts.URL+"/v1/jobs/live", "", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete job: %d", resp.StatusCode)
	}
	ts.Close()
	svc.Close()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newStreamServer(t, ps2, 0)
	if resp, body := do(t, "GET", ts2.URL+"/v1/jobs/live", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job resurrected: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, "GET", ts2.URL+"/v1/jobs", "", ""); resp.StatusCode != http.StatusOK || strings.Contains(body, "live") {
		t.Fatalf("job list after restart: %d %s", resp.StatusCode, body)
	}
}
