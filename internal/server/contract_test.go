package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestRoutesDocumentedInREADME is the route contract: every route the
// server serves must appear, verbatim as "METHOD /v1/path", in the
// README's API reference table. Adding a route without documenting it
// fails `make verify`.
func TestRoutesDocumentedInREADME(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("README.md not readable from the package directory: %v", err)
	}
	doc := string(readme)
	routes := Routes()
	if len(routes) == 0 {
		t.Fatal("server exposes no routes")
	}
	for _, route := range routes {
		if !strings.Contains(doc, route) {
			t.Errorf("served route %q is missing from the README API reference table", route)
		}
	}
}

// TestRouteTableIsServed proves Routes() is not aspirational: every
// listed route resolves to a handler on both the /v1 and legacy
// surfaces (no 404/405 from the mux), and unlisted paths do 404.
func TestRouteTableIsServed(t *testing.T) {
	ts := newTestServer(t)

	for _, route := range Routes() {
		method, pattern, ok := strings.Cut(route, " ")
		if !ok {
			t.Fatalf("malformed route %q", route)
		}
		path := strings.ReplaceAll(pattern, "{name}", "x")
		for _, p := range []string{path, strings.TrimPrefix(path, "/v1")} {
			// Recreate the dataset each time so earlier DELETE iterations
			// cannot turn a served route into a spurious 404.
			do(t, "PUT", ts.URL+"/v1/datasets/x", "text/csv", csvBody)
			body, ctype := "", ""
			if method == "POST" || method == "PUT" {
				body, ctype = "s9: A[0,4]\n", "text/plain"
				if strings.HasSuffix(p, "/mine") || strings.HasSuffix(p, "/rules") {
					body, ctype = `{"min_count":2}`, "application/json"
				}
			}
			resp, respBody := do(t, method, ts.URL+p, ctype, body)
			if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
				t.Errorf("listed route %s %s not served: %d %q", method, p, resp.StatusCode, respBody)
			}
		}
	}

	resp, _ := do(t, "GET", ts.URL+"/v1/unknown", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unlisted path served: %d", resp.StatusCode)
	}
}

// TestDeprecatedAliasForEveryRoute: the mux registers a legacy alias for
// each /v1 route and the alias flags itself deprecated.
func TestDeprecatedAliasForEveryRoute(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, _ := do(t, "GET", ts.URL+"/healthz", "", "")
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /healthz not marked deprecated")
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/healthz", "", "")
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/healthz marked deprecated")
	}
}
