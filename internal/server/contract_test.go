package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// fetchRouteTable pulls the machine-readable route table from a live
// server — the same JSON clients use for discovery — so the contract
// tests assert against what is actually served, not a parallel list.
func fetchRouteTable(t *testing.T, baseURL string) []RouteInfo {
	t.Helper()
	resp, body := do(t, "GET", baseURL+"/v1/routes", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/routes: %d %q", resp.StatusCode, body)
	}
	var payload struct {
		Routes []RouteInfo `json:"routes"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("GET /v1/routes: malformed JSON: %v", err)
	}
	if len(payload.Routes) == 0 {
		t.Fatal("GET /v1/routes returned no routes")
	}
	return payload.Routes
}

// TestRoutesDocumentedInREADME is the route contract: every route the
// server serves — as listed by its own GET /v1/routes endpoint — must
// appear, verbatim as "METHOD /v1/path", in the README's API reference
// table. Adding a route without documenting it fails `make verify`.
func TestRoutesDocumentedInREADME(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("README.md not readable from the package directory: %v", err)
	}
	doc := string(readme)
	ts := newTestServer(t)
	for _, rt := range fetchRouteTable(t, ts.URL) {
		route := rt.Method + " /v1" + rt.Pattern
		if !strings.Contains(doc, route) {
			t.Errorf("served route %q is missing from the README API reference table", route)
		}
		if rt.Summary == "" {
			t.Errorf("route %q has no summary in the route table", route)
		}
	}
}

// TestRouteTableMatchesServer: the served table and the compiled-in one
// agree, and Routes() renders every entry.
func TestRouteTableMatchesServer(t *testing.T) {
	ts := newTestServer(t)
	served := fetchRouteTable(t, ts.URL)
	compiled := RouteTable()
	if len(served) != len(compiled) {
		t.Fatalf("served table has %d routes, RouteTable() has %d", len(served), len(compiled))
	}
	for i, rt := range compiled {
		if served[i] != rt {
			t.Errorf("route %d: served %+v != compiled %+v", i, served[i], rt)
		}
	}
	routes := Routes()
	if len(routes) != len(compiled) {
		t.Fatalf("Routes() has %d entries, RouteTable() has %d", len(routes), len(compiled))
	}
	for i, rt := range compiled {
		want := rt.Method + " /v1" + rt.Pattern
		if routes[i] != want {
			t.Errorf("Routes()[%d] = %q, want %q", i, routes[i], want)
		}
	}
}

// TestRouteTableIsServed proves the route table is not aspirational:
// every listed route resolves to a handler (no 404/405 from the mux) on
// /v1, and — unless flagged v1-only — on the legacy surface too; and
// unlisted paths still 404.
func TestRouteTableIsServed(t *testing.T) {
	ts := newTestServer(t)

	for _, rt := range fetchRouteTable(t, ts.URL) {
		path := strings.ReplaceAll(rt.Pattern, "{name}", "x")
		path = strings.ReplaceAll(path, "{id}", "j1")
		surfaces := []string{"/v1" + path}
		if !rt.V1Only {
			surfaces = append(surfaces, path)
		}
		for _, p := range surfaces {
			// Recreate the dataset and job each time so earlier DELETE
			// iterations cannot turn a served route into a spurious 404.
			do(t, "PUT", ts.URL+"/v1/datasets/x", "text/csv", csvBody)
			do(t, "POST", ts.URL+"/v1/jobs", "application/json", `{"id":"j1","dataset":"x"}`)
			body, ctype := "", ""
			if rt.Method == "POST" || rt.Method == "PUT" {
				body, ctype = "s9: A[0,4]\n", "text/plain"
				switch {
				case strings.HasSuffix(p, "/mine") || strings.HasSuffix(p, "/rules"):
					body, ctype = `{"min_count":2}`, "application/json"
				case strings.HasSuffix(p, "/events"):
					body, ctype = `{"seq":"s9","symbol":"A","start":0,"end":4}`+"\n", "application/x-ndjson"
				case p == "/v1/jobs":
					body, ctype = `{"id":"j2","dataset":"x"}`, "application/json"
				}
			}
			status, respBody := doRoute(t, rt.Method, ts.URL+p, ctype, body)
			// A handler's own 404 (uniform error envelope) still proves the
			// route resolved; the mux's plain-text 404 means it did not.
			handlerNotFound := status == http.StatusNotFound && strings.Contains(respBody, `"error"`)
			if (status == http.StatusNotFound && !handlerNotFound) || status == http.StatusMethodNotAllowed {
				t.Errorf("listed route %s %s not served: %d %q", rt.Method, p, status, respBody)
			}
			do(t, "DELETE", ts.URL+"/v1/jobs/j2", "", "")
		}
	}

	resp, _ := do(t, "GET", ts.URL+"/v1/unknown", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unlisted path served: %d", resp.StatusCode)
	}
}

// doRoute issues one request but, unlike do, never blocks on an
// unbounded body: the SSE events route streams until the client
// disconnects, so only its status matters here.
func doRoute(t *testing.T, method, url, contentType, body string) (int, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		return resp.StatusCode, "(event stream)"
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, string(buf[:n])
}

// TestDeprecatedAliasForEveryRoute: the mux registers a legacy alias for
// each non-v1-only route and the alias flags itself deprecated; v1-only
// routes have no legacy alias at all.
func TestDeprecatedAliasForEveryRoute(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, _ := do(t, "GET", ts.URL+"/healthz", "", "")
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /healthz not marked deprecated")
	}
	resp, _ = do(t, "GET", ts.URL+"/v1/healthz", "", "")
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/healthz marked deprecated")
	}
	// v1-only routes must not leak onto the legacy surface.
	resp, _ = do(t, "GET", ts.URL+"/routes", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("v1-only /routes served on the legacy surface: %d", resp.StatusCode)
	}
	// A deprecated route with a successor advertises it via Link.
	resp, _ = do(t, "POST", ts.URL+"/v1/datasets/x/rules", "application/json", `{}`)
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/v1/datasets/{name}/rules not marked deprecated")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
		t.Errorf("deprecated rules route has no successor Link header: %q", link)
	}
}
