package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// shardedCSV builds a deterministic 48-sequence dataset large enough to
// split into several shards.
func shardedCSV() string {
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	b.WriteString("sequence_id,symbol,start,end\n")
	for s := 0; s < 48; s++ {
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			sym := string(rune('A' + rng.Intn(5)))
			start := rng.Intn(40)
			dur := 1 + rng.Intn(10)
			fmt.Fprintf(&b, "s%d,%s,%d,%d\n", s, sym, start, start+dur)
		}
	}
	return b.String()
}

// TestShardedMineMatchesUnsharded: the same dataset mined through a
// sharded server and an unsharded one must produce identical patterns,
// supports, ordering, and ETags — sharding is invisible to clients.
func TestShardedMineMatchesUnsharded(t *testing.T) {
	serial := NewWithConfig(nil, Config{MaxConcurrentMines: 32, Shards: 1})
	sharded := NewWithConfig(nil, Config{MaxConcurrentMines: 32, Shards: 4, ShardMinSeqs: 1})
	tsSerial := httptest.NewServer(serial.Handler())
	tsSharded := httptest.NewServer(sharded.Handler())
	t.Cleanup(tsSerial.Close)
	t.Cleanup(tsSharded.Close)

	csv := shardedCSV()
	for _, ts := range []*httptest.Server{tsSerial, tsSharded} {
		if resp, body := do(t, "PUT", ts.URL+"/v1/datasets/d", "text/csv", csv); resp.StatusCode != http.StatusCreated {
			t.Fatalf("put: %d %q", resp.StatusCode, body)
		}
	}
	// The sharded server must actually have fanned the dataset out.
	_, part, _, ok := sharded.store.snapshot("d")
	if !ok || part.NumShards() < 2 {
		t.Fatalf("sharded store holds %v shards, want >= 2", part)
	}

	requests := []struct{ path, body string }{
		{"/v1/datasets/d/mine", `{"min_count":3}`},
		{"/v1/datasets/d/mine", `{"min_support":0.2}`},
		{"/v1/datasets/d/mine", `{"min_count":2,"max_span":20,"max_gap":10}`},
		{"/v1/datasets/d/mine", `{"min_count":2,"top_k":10}`},
		{"/v1/datasets/d/mine", `{"min_count":3,"filter":"closed"}`},
		{"/v1/datasets/d/mine", `{"type":"coincidence","min_count":3}`},
		{"/v1/datasets/d/mine", `{"type":"coincidence","min_count":2,"top_k":8}`},
		{"/v1/datasets/d/rules", `{"min_count":3,"min_confidence":0.5}`},
	}
	for _, rq := range requests {
		respA, bodyA := do(t, "POST", tsSerial.URL+rq.path, "application/json", rq.body)
		respB, bodyB := do(t, "POST", tsSharded.URL+rq.path, "application/json", rq.body)
		if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: serial %d, sharded %d (%q / %q)", rq.path, rq.body,
				respA.StatusCode, respB.StatusCode, bodyA, bodyB)
		}
		if a, b := respA.Header.Get("ETag"), respB.Header.Get("ETag"); a == "" || a != b {
			t.Errorf("%s %s: ETag mismatch: serial %q, sharded %q", rq.path, rq.body, a, b)
		}
		if strings.HasSuffix(rq.path, "/rules") {
			if bodyA != bodyB {
				t.Errorf("%s %s: rules bodies differ:\nserial:  %s\nsharded: %s", rq.path, rq.body, bodyA, bodyB)
			}
			continue
		}
		var a, b MineResponse
		if err := json.Unmarshal([]byte(bodyA), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(bodyB), &b); err != nil {
			t.Fatal(err)
		}
		if len(a.Patterns) == 0 {
			t.Fatalf("%s %s: serial run found no patterns; test is vacuous", rq.path, rq.body)
		}
		if len(a.Patterns) != len(b.Patterns) {
			t.Fatalf("%s %s: serial %d patterns, sharded %d", rq.path, rq.body, len(a.Patterns), len(b.Patterns))
		}
		for i := range a.Patterns {
			if a.Patterns[i] != b.Patterns[i] {
				t.Errorf("%s %s: pattern %d differs: serial %+v, sharded %+v",
					rq.path, rq.body, i, a.Patterns[i], b.Patterns[i])
			}
		}
	}

	// The fan-out is observable: the sharded server's metrics must show
	// it routed mines through the coordinator.
	_, metrics := do(t, "GET", tsSharded.URL+"/v1/metrics", "", "")
	for _, want := range []string{"tpmd_shard_fanout_total", "tpmd_shard_skew_ratio", "tpmd_shard_mine_duration_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if strings.Contains(metrics, "tpmd_shard_fanout_total 0") {
		t.Error("tpmd_shard_fanout_total is 0 after sharded mines")
	}
}

// TestSmallDatasetStaysUnsharded: with the default shard-min-seqs
// floor, a tiny dataset keeps a single shard and mines serially even
// when the server allows many shards.
func TestSmallDatasetStaysUnsharded(t *testing.T) {
	s := NewWithConfig(nil, Config{MaxConcurrentMines: 32, Shards: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if resp, body := do(t, "PUT", ts.URL+"/v1/datasets/d", "text/csv", csvBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d %q", resp.StatusCode, body)
	}
	_, part, _, ok := s.store.snapshot("d")
	if !ok || part == nil || part.NumShards() != 1 {
		t.Fatalf("3-sequence dataset got %d shards, want 1", part.NumShards())
	}
	if resp, body := do(t, "POST", ts.URL+"/v1/datasets/d/mine", "application/json", `{"min_count":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %q", resp.StatusCode, body)
	}
	_, metrics := do(t, "GET", ts.URL+"/v1/metrics", "", "")
	if !strings.Contains(metrics, "tpmd_shard_fanout_total 0") {
		t.Error("single-shard dataset should not fan out")
	}
}
