package pattern

import (
	"fmt"
	"sort"
	"strings"

	"tpminer/internal/coincidence"
	"tpminer/internal/interval"
)

// Coinc is a coincidence pattern: an ordered list of symbol sets. A
// sequence supports the pattern when its coincidence sequence has a
// (not necessarily contiguous) subsequence of segments whose alive sets
// contain the pattern's sets element-wise. Elements are sorted and
// duplicate-free.
type Coinc struct {
	Elements [][]string
}

// NewCoinc builds a coincidence pattern, canonicalizing (sorting,
// deduplicating) each element. Input slices are copied.
func NewCoinc(elements ...[]string) Coinc {
	p := Coinc{Elements: make([][]string, len(elements))}
	for i, el := range elements {
		cp := make([]string, len(el))
		copy(cp, el)
		sort.Strings(cp)
		cp = dedupStrings(cp)
		p.Elements[i] = cp
	}
	return p
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of elements.
func (p Coinc) Len() int { return len(p.Elements) }

// Size returns the total number of symbols across elements.
func (p Coinc) Size() int {
	n := 0
	for _, el := range p.Elements {
		n += len(el)
	}
	return n
}

// Clone returns a deep copy.
func (p Coinc) Clone() Coinc {
	out := Coinc{Elements: make([][]string, len(p.Elements))}
	for i, el := range p.Elements {
		cp := make([]string, len(el))
		copy(cp, el)
		out.Elements[i] = cp
	}
	return out
}

// String renders the pattern as "{A B} {C}".
func (p Coinc) String() string {
	parts := make([]string, len(p.Elements))
	for i, el := range p.Elements {
		parts[i] = "{" + strings.Join(el, " ") + "}"
	}
	return strings.Join(parts, " ")
}

// Key returns a canonical map key.
func (p Coinc) Key() string {
	var b strings.Builder
	for i, el := range p.Elements {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strings.Join(el, ","))
	}
	return b.String()
}

// Equal reports structural equality.
func (p Coinc) Equal(q Coinc) bool {
	if len(p.Elements) != len(q.Elements) {
		return false
	}
	for i := range p.Elements {
		if len(p.Elements[i]) != len(q.Elements[i]) {
			return false
		}
		for j := range p.Elements[i] {
			if p.Elements[i][j] != q.Elements[i][j] {
				return false
			}
		}
	}
	return true
}

// Validate checks structural well-formedness: at least one element, no
// empty elements, each element sorted and duplicate-free.
func (p Coinc) Validate() error {
	if len(p.Elements) == 0 {
		return fmt.Errorf("pattern: empty coincidence pattern")
	}
	for i, el := range p.Elements {
		if len(el) == 0 {
			return fmt.Errorf("pattern: coincidence element %d is empty", i)
		}
		for j := 1; j < len(el); j++ {
			if el[j-1] >= el[j] {
				return fmt.Errorf("pattern: coincidence element %d not sorted/deduped at %q", i, el[j])
			}
		}
	}
	return nil
}

// ParseCoinc inverts Coinc.String: "{A B} {C}".
func ParseCoinc(s string) (Coinc, error) {
	var elements [][]string
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '{' {
			return Coinc{}, fmt.Errorf("pattern: expected '{' in %q", s)
		}
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return Coinc{}, fmt.Errorf("pattern: unclosed '{' in %q", s)
		}
		el := strings.Fields(rest[1:close])
		if len(el) == 0 {
			return Coinc{}, fmt.Errorf("pattern: empty element in %q", s)
		}
		for _, sym := range el {
			if strings.ContainsAny(sym, "{}") {
				return Coinc{}, fmt.Errorf("pattern: symbol %q contains brace delimiters", sym)
			}
		}
		sort.Strings(el)
		elements = append(elements, dedupStrings(el))
		rest = strings.TrimSpace(rest[close+1:])
	}
	p := Coinc{Elements: elements}
	if err := p.Validate(); err != nil {
		return Coinc{}, err
	}
	return p, nil
}

// ContainsCoinc reports whether the coincidence sequence contains the
// pattern: a strictly increasing mapping of pattern elements to segments
// with element ⊆ segment alive set. Greedy earliest matching is complete
// for existence.
func ContainsCoinc(cs []coincidence.Coincidence, p Coinc) bool {
	if len(p.Elements) == 0 {
		return false
	}
	i := 0
	for _, el := range p.Elements {
		for {
			if i >= len(cs) {
				return false
			}
			if containsAll(cs[i].Symbols, el) {
				i++
				break
			}
			i++
		}
	}
	return true
}

// containsAll reports whether the sorted set `have` contains every symbol
// of the sorted set `want`.
func containsAll(have, want []string) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
		i++
	}
	return true
}

// TransformDatabase converts an interval database to coincidence
// representation once, for repeated matching.
func TransformDatabase(db *interval.Database) ([][]coincidence.Coincidence, error) {
	out := make([][]coincidence.Coincidence, len(db.Sequences))
	for i := range db.Sequences {
		cs, err := coincidence.Transform(db.Sequences[i])
		if err != nil {
			return nil, err
		}
		out[i] = cs
	}
	return out, nil
}

// SupportCoinc counts sequences (in coincidence representation)
// containing p.
func SupportCoinc(db [][]coincidence.Coincidence, p Coinc) int {
	n := 0
	for _, cs := range db {
		if ContainsCoinc(cs, p) {
			n++
		}
	}
	return n
}
