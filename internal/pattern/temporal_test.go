package pattern

import (
	"strings"
	"testing"

	"tpminer/internal/endpoint"
)

func ep(s string) endpoint.Endpoint {
	e, err := endpoint.Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func mustTemporal(t *testing.T, s string) Temporal {
	t.Helper()
	p, err := ParseTemporal(s)
	if err != nil {
		t.Fatalf("ParseTemporal(%q): %v", s, err)
	}
	return p
}

func TestTemporalStringAndParse(t *testing.T) {
	cases := []string{
		"A+ A-",
		"A+ (A- B+) B-",
		"(A+ B+) (A- B-)",
		"A+ B+ B- A-",
		"A+ A- A.2+ A.2-",
		"(A+ A-)",
	}
	for _, s := range cases {
		p := mustTemporal(t, s)
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseTemporalErrors(t *testing.T) {
	for _, s := range []string{
		"",            // empty
		"A-",          // finish before start
		"A+ (A- B+",   // unclosed paren
		"A+ A+ A-",    // duplicate endpoint
		"A+ A- B-",    // unmatched finish
		"A+ xyz A-",   // bad token
		"B- A+ A- B+", // finish before start
	} {
		if _, err := ParseTemporal(s); err == nil {
			t.Errorf("ParseTemporal(%q) accepted invalid input", s)
		}
	}
}

func TestTemporalSizes(t *testing.T) {
	p := mustTemporal(t, "A+ (A- B+) B-")
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Size() != 4 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.NumIntervals() != 2 {
		t.Errorf("NumIntervals = %d", p.NumIntervals())
	}
}

func TestValidateAndComplete(t *testing.T) {
	complete := mustTemporal(t, "A+ (A- B+) B-")
	if err := complete.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !complete.Complete() {
		t.Error("Complete = false for complete pattern")
	}

	// An open prefix is valid but incomplete.
	prefix := NewTemporal([]endpoint.Endpoint{ep("A+")})
	if err := prefix.Validate(); err != nil {
		t.Errorf("prefix Validate: %v", err)
	}
	if prefix.Complete() {
		t.Error("Complete = true for open prefix")
	}

	// Structurally broken patterns.
	bad := Temporal{Elements: [][]endpoint.Endpoint{{}}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted empty element")
	}
	badOcc := Temporal{Elements: [][]endpoint.Endpoint{{{Symbol: "A", Occ: 0, Kind: endpoint.Start}}}}
	if err := badOcc.Validate(); err == nil {
		t.Error("Validate accepted occurrence 0")
	}
	unsorted := Temporal{Elements: [][]endpoint.Endpoint{{ep("B+"), ep("A+")}}}
	if err := unsorted.Validate(); err == nil {
		t.Error("Validate accepted unsorted element")
	}
}

func TestNewTemporalSortsElements(t *testing.T) {
	p := NewTemporal([]endpoint.Endpoint{ep("B+"), ep("A+")})
	if p.Elements[0][0] != ep("A+") || p.Elements[0][1] != ep("B+") {
		t.Errorf("NewTemporal did not canonicalize: %v", p)
	}
}

func TestNormalize(t *testing.T) {
	// Occurrence labels renumber densely in first-appearance order.
	p := mustTemporal(t, "A.3+ A.3- A.7+ A.7-")
	n := p.Normalize()
	if got := n.String(); got != "A+ A- A.2+ A.2-" {
		t.Errorf("Normalize = %q", got)
	}
	// Idempotent.
	if !n.Normalize().Equal(n) {
		t.Error("Normalize not idempotent")
	}
	// Mixed symbols.
	// Elements re-sort canonically after renumbering: A+ < B- in-element.
	q := mustTemporal(t, "B.2+ (B.2- A.5+) A.5-")
	if got := q.Normalize().String(); got != "B+ (A+ B-) A-" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestKeyDisambiguates(t *testing.T) {
	a := mustTemporal(t, "A+ A- B+ B-")
	b := mustTemporal(t, "A+ (A- B+) B-")
	c := mustTemporal(t, "(A+ B+) A- B-")
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Errorf("keys collide: %q %q %q", a.Key(), b.Key(), c.Key())
	}
}

func TestEqualAndClone(t *testing.T) {
	p := mustTemporal(t, "A+ (A- B+) B-")
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not equal")
	}
	q.Elements[1][0] = ep("C+")
	if p.Equal(q) {
		t.Error("Equal ignores element change")
	}
	if p.Elements[1][0] != ep("A-") {
		t.Error("Clone shares storage")
	}
}

func TestRelationSummary(t *testing.T) {
	cases := map[string]string{
		"A+ A- B+ B-":       "A before B",
		"A+ (A- B+) B-":     "A meets B",
		"A+ B+ A- B-":       "A overlaps B",
		"(A+ B+) A- B-":     "A starts B",
		"B+ A+ A- B-":       "A during B",
		"B+ A+ (A- B-)":     "A finishes B",
		"(A+ B+) (A- B-)":   "A equals B",
		"A+ A- A.2+ A.2-":   "A before A.2",
		"A+ A-":             "A",
		"A+ B+ B- A- C+ C-": "A contains B; A before C; B before C",
	}
	for in, want := range cases {
		p := mustTemporal(t, in)
		if got := p.RelationSummary(); got != want {
			t.Errorf("RelationSummary(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRelationSummaryEveryPairCovered(t *testing.T) {
	p := mustTemporal(t, "A+ B+ C+ A- B- C-")
	got := p.RelationSummary()
	for _, pair := range []string{"A", "B", "C"} {
		if !strings.Contains(got, pair) {
			t.Errorf("RelationSummary %q misses %s", got, pair)
		}
	}
	if strings.Count(got, ";") != 2 {
		t.Errorf("RelationSummary %q should have 3 clauses", got)
	}
}
