// Package pattern defines the two pattern types discovered by P-TPMiner —
// temporal patterns over the endpoint representation and coincidence
// patterns over the coincidence representation — together with their
// validity rules, canonical normalization, containment semantics, and
// rendering (including recovery of pairwise Allen relations from a
// temporal pattern).
package pattern

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

// Temporal is an interval-based sequential pattern in endpoint
// representation: an ordered list of elements, each a set of endpoints
// that co-occur at one time point. A *complete* temporal pattern pairs
// every start with a later (or co-occurring) finish and vice versa; only
// complete patterns describe a realizable arrangement of intervals and
// only those are reported by the miners. Prefixes grown during mining may
// be incomplete.
//
// Elements hold endpoints in canonical order (endpoint.Endpoint.Less).
type Temporal struct {
	Elements [][]endpoint.Endpoint
}

// NewTemporal builds a pattern from elements, canonicalizing the order of
// endpoints inside each element. The input slices are copied.
func NewTemporal(elements ...[]endpoint.Endpoint) Temporal {
	p := Temporal{Elements: make([][]endpoint.Endpoint, len(elements))}
	for i, el := range elements {
		cp := make([]endpoint.Endpoint, len(el))
		copy(cp, el)
		sort.Slice(cp, func(a, b int) bool { return cp[a].Less(cp[b]) })
		p.Elements[i] = cp
	}
	return p
}

// Len returns the number of elements (time points) in the pattern.
func (p Temporal) Len() int { return len(p.Elements) }

// Size returns the total number of endpoints.
func (p Temporal) Size() int {
	n := 0
	for _, el := range p.Elements {
		n += len(el)
	}
	return n
}

// NumIntervals returns the number of interval instances the pattern
// mentions (distinct symbol/occurrence pairs).
func (p Temporal) NumIntervals() int {
	seen := make(map[instKey]struct{})
	for _, el := range p.Elements {
		for _, e := range el {
			seen[instKey{e.Symbol, e.Occ}] = struct{}{}
		}
	}
	return len(seen)
}

type instKey struct {
	sym string
	occ int
}

// Clone returns a deep copy.
func (p Temporal) Clone() Temporal {
	out := Temporal{Elements: make([][]endpoint.Endpoint, len(p.Elements))}
	for i, el := range p.Elements {
		cp := make([]endpoint.Endpoint, len(el))
		copy(cp, el)
		out.Elements[i] = cp
	}
	return out
}

// String renders the pattern as "A+ (A- B+) B-": single-endpoint elements
// bare, multi-endpoint elements parenthesized.
func (p Temporal) String() string {
	parts := make([]string, len(p.Elements))
	for i, el := range p.Elements {
		parts[i] = endpoint.Slice{Points: el}.String()
	}
	return strings.Join(parts, " ")
}

// Key returns a canonical string key usable for dedup maps. Unlike
// String it is unambiguous for any symbols (elements are delimited).
// It sits on the result-sorting hot path, so it builds the key with one
// sized allocation and no fmt machinery.
func (p Temporal) Key() string {
	n := 0
	for _, el := range p.Elements {
		for _, e := range el {
			n += len(e.Symbol) + 5 // '.', up to 2 occ digits, kind, separator
		}
	}
	b := make([]byte, 0, n)
	for i, el := range p.Elements {
		if i > 0 {
			b = append(b, '|')
		}
		for j, e := range el {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, e.Symbol...)
			b = append(b, '.')
			b = strconv.AppendInt(b, int64(e.Occ), 10)
			if e.Kind == endpoint.Start {
				b = append(b, '+')
			} else {
				b = append(b, '-')
			}
		}
	}
	return string(b)
}

// Equal reports structural equality.
func (p Temporal) Equal(q Temporal) bool {
	if len(p.Elements) != len(q.Elements) {
		return false
	}
	for i := range p.Elements {
		if len(p.Elements[i]) != len(q.Elements[i]) {
			return false
		}
		for j := range p.Elements[i] {
			if p.Elements[i][j] != q.Elements[i][j] {
				return false
			}
		}
	}
	return true
}

// Validate checks structural well-formedness: no empty elements, endpoints
// canonically ordered and duplicate-free, every finish preceded by (or
// co-occurring with, in an earlier position of the same element per
// canonical order) its matching start, and no start opened twice.
// Whether every start is also finished is reported separately by
// Complete; prefixes grown during mining are valid but incomplete.
func (p Temporal) Validate() error {
	if len(p.Elements) == 0 {
		return fmt.Errorf("pattern: empty temporal pattern")
	}
	seen := make(map[endpoint.Endpoint]struct{})
	open := make(map[instKey]struct{})
	for i, el := range p.Elements {
		if len(el) == 0 {
			return fmt.Errorf("pattern: element %d is empty", i)
		}
		for j, e := range el {
			if j > 0 && !el[j-1].Less(e) {
				return fmt.Errorf("pattern: element %d not in canonical order at %s", i, e)
			}
			if _, dup := seen[e]; dup {
				return fmt.Errorf("pattern: duplicate endpoint %s", e)
			}
			seen[e] = struct{}{}
			if e.Occ < 1 {
				return fmt.Errorf("pattern: endpoint %s has occurrence < 1", e)
			}
			k := instKey{e.Symbol, e.Occ}
			switch e.Kind {
			case endpoint.Start:
				open[k] = struct{}{}
			case endpoint.Finish:
				if _, ok := open[k]; !ok {
					return fmt.Errorf("pattern: finish %s before its start", e)
				}
				delete(open, k)
			}
		}
	}
	return nil
}

// Complete reports whether every started interval is finished, i.e. the
// pattern describes a realizable interval arrangement. Only complete
// patterns are emitted by the miners.
func (p Temporal) Complete() bool {
	open := make(map[instKey]struct{})
	for _, el := range p.Elements {
		for _, e := range el {
			k := instKey{e.Symbol, e.Occ}
			if e.Kind == endpoint.Start {
				open[k] = struct{}{}
			} else {
				if _, ok := open[k]; !ok {
					return false
				}
				delete(open, k)
			}
		}
	}
	return len(open) == 0
}

// Normalize returns the canonical form of the pattern: occurrence indices
// of each symbol are renumbered 1, 2, ... in order of first appearance of
// their start endpoints. Two patterns that differ only in which concrete
// occurrences they name normalize to the same pattern.
func (p Temporal) Normalize() Temporal {
	next := make(map[string]int)
	remap := make(map[instKey]int)
	for _, el := range p.Elements {
		for _, e := range el {
			k := instKey{e.Symbol, e.Occ}
			if _, ok := remap[k]; !ok {
				next[e.Symbol]++
				remap[k] = next[e.Symbol]
			}
		}
	}
	out := Temporal{Elements: make([][]endpoint.Endpoint, len(p.Elements))}
	for i, el := range p.Elements {
		cp := make([]endpoint.Endpoint, len(el))
		for j, e := range el {
			cp[j] = endpoint.Endpoint{Symbol: e.Symbol, Occ: remap[instKey{e.Symbol, e.Occ}], Kind: e.Kind}
		}
		sort.Slice(cp, func(a, b int) bool { return cp[a].Less(cp[b]) })
		out.Elements[i] = cp
	}
	return out
}

// ParseTemporal inverts Temporal.String: "A+ (A- B+) B-".
func ParseTemporal(s string) (Temporal, error) {
	var elements [][]endpoint.Endpoint
	fields := strings.Fields(s)
	i := 0
	for i < len(fields) {
		f := fields[i]
		if strings.HasPrefix(f, "(") {
			// Collect tokens until the closing paren.
			var group []string
			f = strings.TrimPrefix(f, "(")
			closed := false
			for {
				if strings.HasSuffix(f, ")") {
					group = append(group, strings.TrimSuffix(f, ")"))
					closed = true
					break
				}
				if f != "" {
					group = append(group, f)
				}
				i++
				if i >= len(fields) {
					break
				}
				f = fields[i]
			}
			if !closed {
				return Temporal{}, fmt.Errorf("pattern: unclosed '(' in %q", s)
			}
			el := make([]endpoint.Endpoint, 0, len(group))
			for _, g := range group {
				e, err := endpoint.Parse(g)
				if err != nil {
					return Temporal{}, err
				}
				el = append(el, e)
			}
			sort.Slice(el, func(a, b int) bool { return el[a].Less(el[b]) })
			elements = append(elements, el)
		} else {
			e, err := endpoint.Parse(f)
			if err != nil {
				return Temporal{}, err
			}
			elements = append(elements, []endpoint.Endpoint{e})
		}
		i++
	}
	p := Temporal{Elements: elements}
	if err := p.Validate(); err != nil {
		return Temporal{}, err
	}
	return p, nil
}

// RelationSummary recovers the pairwise Allen relations among the
// intervals of a complete temporal pattern and renders them as
// "A overlaps B; A before C". Interval instances are named by symbol,
// with ".k" occurrence suffixes for repeated symbols.
func (p Temporal) RelationSummary() string {
	type inst struct {
		name       string
		start, end int
	}
	pos := make(map[instKey]*inst)
	var order []*inst
	for i, el := range p.Elements {
		for _, e := range el {
			k := instKey{e.Symbol, e.Occ}
			in, ok := pos[k]
			if !ok {
				name := e.Symbol
				if e.Occ > 1 {
					name = fmt.Sprintf("%s.%d", e.Symbol, e.Occ)
				}
				in = &inst{name: name, start: -1, end: -1}
				pos[k] = in
				order = append(order, in)
			}
			if e.Kind == endpoint.Start {
				in.start = i
			} else {
				in.end = i
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].name < order[j].name })
	var parts []string
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := order[i], order[j]
			if a.start < 0 || a.end < 0 || b.start < 0 || b.end < 0 {
				continue // incomplete pattern: skip unpaired instances
			}
			rel := interval.RelateEndpoints(a.start, a.end, b.start, b.end)
			parts = append(parts, fmt.Sprintf("%s %s %s", a.name, rel, b.name))
		}
	}
	if len(parts) == 0 && len(order) == 1 && order[0].start >= 0 && order[0].end >= 0 {
		return order[0].name
	}
	return strings.Join(parts, "; ")
}
