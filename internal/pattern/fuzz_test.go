package pattern

import (
	"testing"
)

// FuzzParseTemporal checks that the temporal-pattern parser never
// panics, and that anything it accepts is valid and round-trips through
// String.
func FuzzParseTemporal(f *testing.F) {
	for _, seed := range []string{
		"A+ A-",
		"A+ (A- B+) B-",
		"(A+ B+) (A- B-)",
		"A.2+ A.2-",
		"A+ (A- B+",
		"A-",
		"",
		"x y z",
		"(((",
		"sign.w3+ face.wh+ sign.w3- face.wh-",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseTemporal(s)
		if err != nil {
			return
		}
		if vErr := p.Validate(); vErr != nil {
			t.Fatalf("accepted %q but Validate fails: %v", s, vErr)
		}
		back, err := ParseTemporal(p.String())
		if err != nil {
			t.Fatalf("accepted %q but %q does not re-parse: %v", s, p.String(), err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip %q -> %q -> %q changed the pattern", s, p.String(), back.String())
		}
		// Normalization must stay valid and idempotent.
		n := p.Normalize()
		if vErr := n.Validate(); vErr != nil {
			t.Fatalf("normalized %q invalid: %v", s, vErr)
		}
		if !n.Normalize().Equal(n) {
			t.Fatalf("normalization of %q not idempotent", s)
		}
	})
}

// FuzzParseCoinc does the same for coincidence patterns.
func FuzzParseCoinc(f *testing.F) {
	for _, seed := range []string{
		"{A}",
		"{A B} {C}",
		"{A",
		"}",
		"",
		"{} {A}",
		"{A A A}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseCoinc(s)
		if err != nil {
			return
		}
		if vErr := p.Validate(); vErr != nil {
			t.Fatalf("accepted %q but Validate fails: %v", s, vErr)
		}
		back, err := ParseCoinc(p.String())
		if err != nil || !back.Equal(p) {
			t.Fatalf("round trip %q -> %q broken: %v", s, p.String(), err)
		}
	})
}
