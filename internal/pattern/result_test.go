package pattern

import (
	"testing"
)

func TestSortTemporalResults(t *testing.T) {
	rs := []TemporalResult{
		{Pattern: mustTemporal(t, "B+ B-"), Support: 5},
		{Pattern: mustTemporal(t, "A+ A- B+ B-"), Support: 7},
		{Pattern: mustTemporal(t, "A+ A-"), Support: 7},
		{Pattern: mustTemporal(t, "C+ C-"), Support: 5},
	}
	SortTemporalResults(rs)
	// Descending support, then ascending size, then key.
	if rs[0].Pattern.String() != "A+ A-" {
		t.Errorf("rs[0] = %v", rs[0].Pattern)
	}
	if rs[1].Pattern.String() != "A+ A- B+ B-" {
		t.Errorf("rs[1] = %v", rs[1].Pattern)
	}
	if rs[2].Pattern.String() != "B+ B-" || rs[3].Pattern.String() != "C+ C-" {
		t.Errorf("tail order: %v %v", rs[2].Pattern, rs[3].Pattern)
	}
}

func TestNormalizeTemporalResultsMergesMax(t *testing.T) {
	rs := []TemporalResult{
		{Pattern: mustTemporal(t, "A.2+ A.2-"), Support: 4},
		{Pattern: mustTemporal(t, "A+ A-"), Support: 9},
		{Pattern: mustTemporal(t, "A.3+ A.3-"), Support: 2},
		{Pattern: mustTemporal(t, "B+ B-"), Support: 5},
	}
	out := NormalizeTemporalResults(rs)
	if len(out) != 2 {
		t.Fatalf("len = %d: %v", len(out), out)
	}
	if out[0].Pattern.String() != "A+ A-" || out[0].Support != 9 {
		t.Errorf("merged A = %v", out[0])
	}
	if out[1].Pattern.String() != "B+ B-" || out[1].Support != 5 {
		t.Errorf("B = %v", out[1])
	}
}

func TestResultsEqual(t *testing.T) {
	a := []TemporalResult{
		{Pattern: mustTemporal(t, "A+ A-"), Support: 3},
		{Pattern: mustTemporal(t, "B+ B-"), Support: 2},
	}
	b := []TemporalResult{
		{Pattern: mustTemporal(t, "B+ B-"), Support: 2},
		{Pattern: mustTemporal(t, "A+ A-"), Support: 3},
	}
	if !TemporalResultsEqual(a, b) {
		t.Error("order should not matter")
	}
	b[0].Support = 1
	if TemporalResultsEqual(a, b) {
		t.Error("support difference ignored")
	}
	if TemporalResultsEqual(a, a[:1]) {
		t.Error("length difference ignored")
	}

	ca := []CoincResult{{Pattern: mustCoinc(t, "{A}"), Support: 3}}
	cb := []CoincResult{{Pattern: mustCoinc(t, "{A}"), Support: 3}}
	if !CoincResultsEqual(ca, cb) {
		t.Error("equal coinc results differ")
	}
	cb[0].Support = 4
	if CoincResultsEqual(ca, cb) {
		t.Error("coinc support difference ignored")
	}
}

func TestSortCoincResults(t *testing.T) {
	rs := []CoincResult{
		{Pattern: mustCoinc(t, "{B}"), Support: 1},
		{Pattern: mustCoinc(t, "{A B}"), Support: 3},
		{Pattern: mustCoinc(t, "{A}"), Support: 3},
	}
	SortCoincResults(rs)
	if rs[0].Pattern.String() != "{A}" || rs[1].Pattern.String() != "{A B}" || rs[2].Pattern.String() != "{B}" {
		t.Errorf("order: %v", rs)
	}
}
