package pattern

import (
	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

// ContainsAligned reports whether the endpoint sequence contains the
// temporal pattern under occurrence-aligned semantics: pattern endpoint
// A.k± matches exactly the sequence's k-th occurrence of A. Because every
// occurrence-indexed endpoint appears at most once per sequence, the
// embedding — if it exists — is positionally unique: all endpoints of one
// pattern element must share a slice, and element slices must be strictly
// increasing.
//
// This is the semantics mined by P-TPMiner and all baselines; see
// DESIGN.md "Duplicate-symbol semantics".
func ContainsAligned(slices []endpoint.Slice, p Temporal) bool {
	return BuildIndex(slices).Contains(p)
}

// Index precomputes the slice position of every endpoint of one encoded
// sequence, for repeated aligned matching (every endpoint occurs at most
// once per sequence, so the position is unique).
type Index map[endpoint.Endpoint]int

// BuildIndex indexes one endpoint-encoded sequence.
func BuildIndex(slices []endpoint.Slice) Index {
	ix := make(Index, 2*len(slices))
	for i, sl := range slices {
		for _, e := range sl.Points {
			ix[e] = i
		}
	}
	return ix
}

// BuildIndexes indexes every sequence of an encoded database.
func BuildIndexes(db [][]endpoint.Slice) []Index {
	out := make([]Index, len(db))
	for i, s := range db {
		out[i] = BuildIndex(s)
	}
	return out
}

// Contains reports whether the indexed sequence contains p under aligned
// semantics: all endpoints of one pattern element must share a slice,
// and element slices must strictly increase.
func (ix Index) Contains(p Temporal) bool {
	if len(p.Elements) == 0 {
		return false
	}
	prev := -1
	for _, el := range p.Elements {
		at := -2
		for _, e := range el {
			i, ok := ix[e]
			if !ok {
				return false
			}
			if at == -2 {
				at = i
			} else if at != i {
				return false
			}
		}
		if at <= prev {
			return false
		}
		prev = at
	}
	return true
}

// SupportAligned counts the sequences (given in endpoint representation)
// that contain p under aligned semantics.
func SupportAligned(db [][]endpoint.Slice, p Temporal) int {
	n := 0
	for _, s := range db {
		if ContainsAligned(s, p) {
			n++
		}
	}
	return n
}

// SupportIndexed counts the indexed sequences containing p.
func SupportIndexed(ixs []Index, p Temporal) int {
	n := 0
	for _, ix := range ixs {
		if ix.Contains(p) {
			n++
		}
	}
	return n
}

// EncodeDatabase converts an interval database to endpoint representation
// once, for repeated matching. Sequences that fail validation abort with
// the error.
func EncodeDatabase(db *interval.Database) ([][]endpoint.Slice, error) {
	out := make([][]endpoint.Slice, len(db.Sequences))
	for i := range db.Sequences {
		sl, err := endpoint.Encode(db.Sequences[i])
		if err != nil {
			return nil, err
		}
		out[i] = sl
	}
	return out, nil
}

// ContainsAny reports whether the sequence contains the temporal pattern
// under any-binding semantics: each pattern interval instance may map to
// any same-symbol interval of the sequence (injectively) as long as the
// induced endpoint arrangement matches the pattern's element structure.
// This is strictly more permissive than ContainsAligned and is used for
// verification and result interpretation, not for mining.
func ContainsAny(seq interval.Sequence, p Temporal) bool {
	if len(p.Elements) == 0 || !p.Complete() {
		return false
	}

	// Pattern instances with their (start element, end element) indices.
	type pinst struct {
		sym        string
		start, end int
	}
	idx := make(map[instKey]int)
	var pinsts []pinst
	for i, el := range p.Elements {
		for _, e := range el {
			k := instKey{e.Symbol, e.Occ}
			j, ok := idx[k]
			if !ok {
				j = len(pinsts)
				idx[k] = j
				pinsts = append(pinsts, pinst{sym: e.Symbol, start: -1, end: -1})
			}
			if e.Kind == endpoint.Start {
				pinsts[j].start = i
			} else {
				pinsts[j].end = i
			}
		}
	}

	// Sequence instances with their concrete times.
	norm := seq.Clone()
	norm.Normalize()
	type sinst struct {
		sym        string
		start, end interval.Time
		used       bool
	}
	sinsts := make([]sinst, len(norm.Intervals))
	for i, iv := range norm.Intervals {
		sinsts[i] = sinst{sym: iv.Symbol, start: iv.Start, end: iv.End}
	}

	// Backtracking assignment: bind each pattern instance to an unused
	// same-symbol sequence instance; element indices must induce a
	// consistent strictly-increasing time assignment. elemTime[e] is the
	// concrete time bound to pattern element e (-1 if unbound).
	elemTime := make([]interval.Time, len(p.Elements))
	elemBound := make([]bool, len(p.Elements))

	consistent := func(elem int, t interval.Time) bool {
		if elemBound[elem] {
			return elemTime[elem] == t
		}
		for e := elem - 1; e >= 0; e-- {
			if elemBound[e] {
				if elemTime[e] >= t {
					return false
				}
				break
			}
		}
		for e := elem + 1; e < len(p.Elements); e++ {
			if elemBound[e] {
				if elemTime[e] <= t {
					return false
				}
				break
			}
		}
		return true
	}

	var rec func(pi int) bool
	rec = func(pi int) bool {
		if pi == len(pinsts) {
			return true
		}
		pin := pinsts[pi]
		for si := range sinsts {
			sin := &sinsts[si]
			if sin.used || sin.sym != pin.sym {
				continue
			}
			if !consistent(pin.start, sin.start) {
				continue
			}
			sBound, sPrev := elemBound[pin.start], elemTime[pin.start]
			elemBound[pin.start], elemTime[pin.start] = true, sin.start
			if !consistent(pin.end, sin.end) {
				elemBound[pin.start], elemTime[pin.start] = sBound, sPrev
				continue
			}
			eBound, ePrev := elemBound[pin.end], elemTime[pin.end]
			elemBound[pin.end], elemTime[pin.end] = true, sin.end
			sin.used = true
			if rec(pi + 1) {
				return true
			}
			sin.used = false
			elemBound[pin.end], elemTime[pin.end] = eBound, ePrev
			elemBound[pin.start], elemTime[pin.start] = sBound, sPrev
		}
		return false
	}
	return rec(0)
}

// SupportAny counts the sequences of the database containing p under
// any-binding semantics.
func SupportAny(db *interval.Database, p Temporal) int {
	n := 0
	for i := range db.Sequences {
		if ContainsAny(db.Sequences[i], p) {
			n++
		}
	}
	return n
}
