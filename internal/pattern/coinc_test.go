package pattern

import (
	"testing"

	"tpminer/internal/coincidence"
	"tpminer/internal/interval"
)

func mustCoinc(t *testing.T, s string) Coinc {
	t.Helper()
	p, err := ParseCoinc(s)
	if err != nil {
		t.Fatalf("ParseCoinc(%q): %v", s, err)
	}
	return p
}

func TestCoincStringAndParse(t *testing.T) {
	for _, s := range []string{
		"{A}",
		"{A B}",
		"{A} {A B} {B}",
		"{x.1 y.2}",
	} {
		p := mustCoinc(t, s)
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseCoincCanonicalizes(t *testing.T) {
	p := mustCoinc(t, "{B A A}")
	if got := p.String(); got != "{A B}" {
		t.Errorf("canonicalization: %q", got)
	}
}

func TestParseCoincErrors(t *testing.T) {
	for _, s := range []string{"", "A", "{}", "{A", "A}", "{A} B"} {
		if _, err := ParseCoinc(s); err == nil {
			t.Errorf("ParseCoinc(%q) accepted invalid input", s)
		}
	}
}

func TestCoincSizesAndEqual(t *testing.T) {
	p := mustCoinc(t, "{A B} {C}")
	if p.Len() != 2 || p.Size() != 3 {
		t.Errorf("Len=%d Size=%d", p.Len(), p.Size())
	}
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not equal")
	}
	q.Elements[0][0] = "Z"
	if p.Equal(q) || p.Elements[0][0] != "A" {
		t.Error("Clone shares storage or Equal broken")
	}
	if p.Equal(mustCoinc(t, "{A B}")) {
		t.Error("Equal ignores length")
	}
	if p.Key() == mustCoinc(t, "{A} {B C}").Key() {
		t.Error("Key collision")
	}
}

func TestCoincValidate(t *testing.T) {
	if err := mustCoinc(t, "{A B} {A}").Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := Coinc{Elements: [][]string{{"B", "A"}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted unsorted element")
	}
	dup := Coinc{Elements: [][]string{{"A", "A"}}}
	if err := dup.Validate(); err == nil {
		t.Error("accepted duplicate symbol")
	}
	empty := Coinc{}
	if err := empty.Validate(); err == nil {
		t.Error("accepted empty pattern")
	}
}

func coincSeq(t *testing.T, ivs ...interval.Interval) []coincidence.Coincidence {
	t.Helper()
	cs, err := coincidence.Transform(interval.Sequence{Intervals: ivs})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestContainsCoinc(t *testing.T) {
	// A[0,10] overlaps B[5,15]; C[20,25] after → {A} {A B} {B} {C}.
	cs := coincSeq(t,
		interval.Interval{Symbol: "A", Start: 0, End: 10},
		interval.Interval{Symbol: "B", Start: 5, End: 15},
		interval.Interval{Symbol: "C", Start: 20, End: 25},
	)
	for _, s := range []string{
		"{A}", "{A B}", "{A} {B}", "{A} {A B} {B} {C}", "{B} {C}", "{A B} {C}",
	} {
		if !ContainsCoinc(cs, mustCoinc(t, s)) {
			t.Errorf("ContainsCoinc(%q) = false", s)
		}
	}
	for _, s := range []string{
		"{A C}", "{C} {A}", "{B} {A B}", "{D}", "{A B C}",
	} {
		if ContainsCoinc(cs, mustCoinc(t, s)) {
			t.Errorf("ContainsCoinc(%q) = true", s)
		}
	}
	if ContainsCoinc(cs, Coinc{}) {
		t.Error("empty pattern contained")
	}
}

func TestContainsCoincRepeatedElement(t *testing.T) {
	// {A} occurs twice, separated by {A B}: pattern "{A} {A}" needs two
	// distinct segments.
	cs := coincSeq(t,
		interval.Interval{Symbol: "A", Start: 0, End: 20},
		interval.Interval{Symbol: "B", Start: 5, End: 10},
	)
	if !ContainsCoinc(cs, mustCoinc(t, "{A} {A}")) {
		t.Error("{A} {A} should match {A} {A B} {A}")
	}
	if !ContainsCoinc(cs, mustCoinc(t, "{A} {A} {A}")) {
		t.Error("{A} {A} {A} should match (subset matching)")
	}
	if ContainsCoinc(cs, mustCoinc(t, "{B} {B}")) {
		t.Error("{B} {B} should not match a single B segment")
	}
}

func TestSupportCoinc(t *testing.T) {
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 10}, {Symbol: "B", Start: 5, End: 15}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 10}},
		[]interval.Interval{{Symbol: "B", Start: 0, End: 10}, {Symbol: "A", Start: 5, End: 15}},
	)
	enc, err := TransformDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	if got := SupportCoinc(enc, mustCoinc(t, "{A}")); got != 3 {
		t.Errorf("support({A}) = %d", got)
	}
	if got := SupportCoinc(enc, mustCoinc(t, "{A B}")); got != 2 {
		t.Errorf("support({A B}) = %d", got)
	}
	if got := SupportCoinc(enc, mustCoinc(t, "{A} {B}")); got != 1 {
		t.Errorf("support({A} {B}) = %d", got)
	}
}
