package pattern

import "sort"

// TemporalResult pairs a temporal pattern with its support count.
type TemporalResult struct {
	Pattern Temporal
	Support int
}

// CoincResult pairs a coincidence pattern with its support count.
type CoincResult struct {
	Pattern Coinc
	Support int
}

// SortTemporalResults orders results deterministically: descending
// support, then ascending size, then lexicographic key. All miners sort
// their output this way so result sets compare element-wise.
func SortTemporalResults(rs []TemporalResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Support != rs[j].Support {
			return rs[i].Support > rs[j].Support
		}
		si, sj := rs[i].Pattern.Size(), rs[j].Pattern.Size()
		if si != sj {
			return si < sj
		}
		return rs[i].Pattern.Key() < rs[j].Pattern.Key()
	})
}

// SortCoincResults is the coincidence analogue of SortTemporalResults.
func SortCoincResults(rs []CoincResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Support != rs[j].Support {
			return rs[i].Support > rs[j].Support
		}
		si, sj := rs[i].Pattern.Size(), rs[j].Pattern.Size()
		if si != sj {
			return si < sj
		}
		return rs[i].Pattern.Key() < rs[j].Pattern.Key()
	})
}

// NormalizeTemporalResults canonicalizes every pattern (dropping
// occurrence labels, see Temporal.Normalize) and merges duplicates,
// keeping the maximum support. The result is sorted.
func NormalizeTemporalResults(rs []TemporalResult) []TemporalResult {
	best := make(map[string]TemporalResult, len(rs))
	for _, r := range rs {
		n := r.Pattern.Normalize()
		k := n.Key()
		if prev, ok := best[k]; !ok || r.Support > prev.Support {
			best[k] = TemporalResult{Pattern: n, Support: r.Support}
		}
	}
	out := make([]TemporalResult, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	SortTemporalResults(out)
	return out
}

// TemporalResultsEqual reports whether two sorted result sets are
// identical (same patterns with same supports, order-insensitively).
func TemporalResultsEqual(a, b []TemporalResult) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string]int, len(a))
	for _, r := range a {
		am[r.Pattern.Key()] = r.Support
	}
	for _, r := range b {
		if sup, ok := am[r.Pattern.Key()]; !ok || sup != r.Support {
			return false
		}
	}
	return true
}

// CoincResultsEqual is the coincidence analogue of TemporalResultsEqual.
func CoincResultsEqual(a, b []CoincResult) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string]int, len(a))
	for _, r := range a {
		am[r.Pattern.Key()] = r.Support
	}
	for _, r := range b {
		if sup, ok := am[r.Pattern.Key()]; !ok || sup != r.Support {
			return false
		}
	}
	return true
}
