package pattern

import "sort"

// TemporalResult pairs a temporal pattern with its support count.
type TemporalResult struct {
	Pattern Temporal
	Support int
}

// CoincResult pairs a coincidence pattern with its support count.
type CoincResult struct {
	Pattern Coinc
	Support int
}

// resultOrder is the precomputed sort rank of one result. Size and Key
// are not free (Size counts distinct instances, Key allocates), so the
// sorters compute both once per result instead of once per comparison.
type resultOrder struct {
	size int
	key  string
}

func (a resultOrder) less(b resultOrder, supA, supB int) bool {
	if supA != supB {
		return supA > supB
	}
	if a.size != b.size {
		return a.size < b.size
	}
	return a.key < b.key
}

// SortTemporalResults orders results deterministically: descending
// support, then ascending size, then lexicographic key. All miners sort
// their output this way so result sets compare element-wise.
func SortTemporalResults(rs []TemporalResult) {
	if len(rs) < 2 {
		return
	}
	ks := make([]resultOrder, len(rs))
	for i := range rs {
		ks[i] = resultOrder{rs[i].Pattern.Size(), rs[i].Pattern.Key()}
	}
	sort.Sort(&temporalSorter{rs, ks})
}

type temporalSorter struct {
	rs []TemporalResult
	ks []resultOrder
}

func (s *temporalSorter) Len() int { return len(s.rs) }
func (s *temporalSorter) Less(i, j int) bool {
	return s.ks[i].less(s.ks[j], s.rs[i].Support, s.rs[j].Support)
}
func (s *temporalSorter) Swap(i, j int) {
	s.rs[i], s.rs[j] = s.rs[j], s.rs[i]
	s.ks[i], s.ks[j] = s.ks[j], s.ks[i]
}

// SortCoincResults is the coincidence analogue of SortTemporalResults.
func SortCoincResults(rs []CoincResult) {
	if len(rs) < 2 {
		return
	}
	ks := make([]resultOrder, len(rs))
	for i := range rs {
		ks[i] = resultOrder{rs[i].Pattern.Size(), rs[i].Pattern.Key()}
	}
	sort.Sort(&coincSorter{rs, ks})
}

type coincSorter struct {
	rs []CoincResult
	ks []resultOrder
}

func (s *coincSorter) Len() int { return len(s.rs) }
func (s *coincSorter) Less(i, j int) bool {
	return s.ks[i].less(s.ks[j], s.rs[i].Support, s.rs[j].Support)
}
func (s *coincSorter) Swap(i, j int) {
	s.rs[i], s.rs[j] = s.rs[j], s.rs[i]
	s.ks[i], s.ks[j] = s.ks[j], s.ks[i]
}

// NormalizeTemporalResults canonicalizes every pattern (dropping
// occurrence labels, see Temporal.Normalize) and merges duplicates,
// keeping the maximum support. The result is sorted.
func NormalizeTemporalResults(rs []TemporalResult) []TemporalResult {
	best := make(map[string]TemporalResult, len(rs))
	for _, r := range rs {
		n := r.Pattern.Normalize()
		k := n.Key()
		if prev, ok := best[k]; !ok || r.Support > prev.Support {
			best[k] = TemporalResult{Pattern: n, Support: r.Support}
		}
	}
	out := make([]TemporalResult, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	SortTemporalResults(out)
	return out
}

// TemporalResultsEqual reports whether two sorted result sets are
// identical (same patterns with same supports, order-insensitively).
func TemporalResultsEqual(a, b []TemporalResult) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string]int, len(a))
	for _, r := range a {
		am[r.Pattern.Key()] = r.Support
	}
	for _, r := range b {
		if sup, ok := am[r.Pattern.Key()]; !ok || sup != r.Support {
			return false
		}
	}
	return true
}

// CoincResultsEqual is the coincidence analogue of TemporalResultsEqual.
func CoincResultsEqual(a, b []CoincResult) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string]int, len(a))
	for _, r := range a {
		am[r.Pattern.Key()] = r.Support
	}
	for _, r := range b {
		if sup, ok := am[r.Pattern.Key()]; !ok || sup != r.Support {
			return false
		}
	}
	return true
}
