package pattern

import (
	"math/rand"
	"testing"

	"tpminer/internal/endpoint"
	"tpminer/internal/interval"
)

func encode(t *testing.T, ivs ...interval.Interval) []endpoint.Slice {
	t.Helper()
	sl, err := endpoint.Encode(interval.Sequence{Intervals: ivs})
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

func TestContainsAlignedBasic(t *testing.T) {
	// Sequence: A[0,4] overlaps B[2,6]; C[8,9] after both.
	seq := encode(t,
		interval.Interval{Symbol: "A", Start: 0, End: 4},
		interval.Interval{Symbol: "B", Start: 2, End: 6},
		interval.Interval{Symbol: "C", Start: 8, End: 9},
	)
	yes := []string{
		"A+ A-",
		"A+ B+ A- B-",
		"B+ B- C+ C-",
		"A+ B+ A- B- C+ C-",
		"A+ C+ C-", // incomplete prefixes also matchable
	}
	for _, s := range yes {
		p, err := ParseTemporal(s)
		if err != nil {
			t.Fatal(err)
		}
		if !ContainsAligned(seq, p) {
			t.Errorf("ContainsAligned(%q) = false", s)
		}
	}
	no := []string{
		"B+ A+ A- B-",   // wrong arrangement (B during A)
		"(A+ B+) A- B-", // A and B do not co-start
		"A+ (A- B+) B-", // A does not meet B
		"C+ C- A+ A-",   // wrong order
		"A.2+ A.2-",     // no second A
		"A+ A- D+ D-",   // unknown symbol
		"(A+ B+ C+) A- B- C-",
	}
	for _, s := range no {
		p, err := ParseTemporal(s)
		if err != nil {
			t.Fatal(err)
		}
		if ContainsAligned(seq, p) {
			t.Errorf("ContainsAligned(%q) = true", s)
		}
	}
}

func TestContainsAlignedEmptyPattern(t *testing.T) {
	seq := encode(t, interval.Interval{Symbol: "A", Start: 0, End: 1})
	if ContainsAligned(seq, Temporal{}) {
		t.Error("empty pattern contained")
	}
}

func TestContainsAlignedOccurrenceSemantics(t *testing.T) {
	// Sequence has A.1[0,10], A.2[20,30], A.3[25,35].
	seq := encode(t,
		interval.Interval{Symbol: "A", Start: 0, End: 10},
		interval.Interval{Symbol: "A", Start: 20, End: 30},
		interval.Interval{Symbol: "A", Start: 25, End: 35},
	)
	// "A.2 overlaps A.3" holds.
	p, _ := ParseTemporal("A.2+ A.3+ A.2- A.3-")
	if !ContainsAligned(seq, p) {
		t.Error("occurrence-labelled overlap not found")
	}
	// But the dense labelling "A.1 overlaps A.2" does NOT hold (A.1 is
	// before A.2) — this is exactly the aligned-semantics subtlety the
	// raw search space covers and normalization merges.
	q, _ := ParseTemporal("A+ A.2+ A- A.2-")
	if ContainsAligned(seq, q) {
		t.Error("dense labelling should not match")
	}
	// Any-binding semantics does accept the normalized pattern.
	dbSeq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 10},
		{Symbol: "A", Start: 20, End: 30},
		{Symbol: "A", Start: 25, End: 35},
	}}
	if !ContainsAny(dbSeq, q) {
		t.Error("ContainsAny should find an overlapping A pair")
	}
}

func TestContainsAnyBasic(t *testing.T) {
	seq := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 4},
		{Symbol: "B", Start: 2, End: 6},
	}}
	p, _ := ParseTemporal("A+ B+ A- B-")
	if !ContainsAny(seq, p) {
		t.Error("overlap not found")
	}
	q, _ := ParseTemporal("B+ B- A+ A-")
	if ContainsAny(seq, q) {
		t.Error("wrong order accepted")
	}
	// Incomplete patterns are rejected by ContainsAny.
	r := NewTemporal([]endpoint.Endpoint{ep("A+")})
	if ContainsAny(seq, r) {
		t.Error("incomplete pattern accepted")
	}
}

func TestContainsAnyInjective(t *testing.T) {
	// Pattern "A before A" needs two distinct A intervals.
	one := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 4},
	}}
	p, _ := ParseTemporal("A+ A- A.2+ A.2-")
	if ContainsAny(one, p) {
		t.Error("single interval matched a two-instance pattern")
	}
	two := interval.Sequence{Intervals: []interval.Interval{
		{Symbol: "A", Start: 0, End: 4},
		{Symbol: "A", Start: 6, End: 9},
	}}
	if !ContainsAny(two, p) {
		t.Error("A before A not found")
	}
}

// TestAnyBindingGeneralizesAligned: whenever aligned containment holds,
// any-binding containment must hold too (for complete patterns).
func TestAnyBindingGeneralizesAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		seq := interval.Sequence{}
		for i := 0; i < 1+rng.Intn(6); i++ {
			start := rng.Int63n(20)
			seq.Intervals = append(seq.Intervals, interval.Interval{
				Symbol: string(rune('A' + rng.Intn(2))),
				Start:  start,
				End:    start + rng.Int63n(10),
			})
		}
		seq.Normalize()
		enc, err := endpoint.Encode(seq)
		if err != nil {
			t.Fatal(err)
		}
		// Build a random complete sub-pattern from a random subset of
		// the sequence's own intervals (guaranteed aligned-contained
		// only if occurrence indices stay dense... so test implication
		// with the full pattern of a subset re-encoded).
		var sub []interval.Interval
		for _, iv := range seq.Intervals {
			if rng.Intn(2) == 0 {
				sub = append(sub, iv)
			}
		}
		if len(sub) == 0 {
			continue
		}
		subSlices, err := endpoint.Encode(interval.Sequence{Intervals: sub})
		if err != nil {
			t.Fatal(err)
		}
		els := make([][]endpoint.Endpoint, len(subSlices))
		for i, sl := range subSlices {
			els[i] = sl.Points
		}
		p := NewTemporal(els...)
		if ContainsAligned(enc, p) && !ContainsAny(seq, p) {
			t.Fatalf("aligned holds but any-binding fails\nseq: %v\npattern: %v", seq.Intervals, p)
		}
		// A pattern built from the sequence's own intervals must always
		// be any-binding contained.
		if !ContainsAny(seq, p) {
			t.Fatalf("own sub-arrangement not contained\nseq: %v\nsub: %v\npattern: %v", seq.Intervals, sub, p)
		}
	}
}

func TestSupportCounting(t *testing.T) {
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}},
		[]interval.Interval{{Symbol: "B", Start: 0, End: 4}, {Symbol: "A", Start: 2, End: 6}},
	)
	enc, err := EncodeDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ParseTemporal("A+ A-")
	if got := SupportAligned(enc, p); got != 3 {
		t.Errorf("support(A) = %d, want 3", got)
	}
	q, _ := ParseTemporal("A+ B+ A- B-")
	if got := SupportAligned(enc, q); got != 1 {
		t.Errorf("support(A overlaps B) = %d, want 1", got)
	}
	if got := SupportAny(db, q); got != 1 {
		t.Errorf("SupportAny = %d, want 1", got)
	}
	ixs := BuildIndexes(enc)
	if got := SupportIndexed(ixs, q); got != 1 {
		t.Errorf("SupportIndexed = %d, want 1", got)
	}
}

func TestEncodeDatabaseError(t *testing.T) {
	db := interval.NewDatabase([]interval.Interval{{Symbol: "", Start: 0, End: 1}})
	if _, err := EncodeDatabase(db); err == nil {
		t.Error("EncodeDatabase accepted invalid interval")
	}
}
