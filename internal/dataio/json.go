package dataio

import (
	"encoding/json"
	"fmt"
	"io"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// JSON interop. The wire shapes are stable and self-describing so other
// tooling (notebooks, dashboards) can consume mining results without
// parsing the compact text formats.

// jsonInterval is the wire form of one event interval.
type jsonInterval struct {
	Symbol string        `json:"symbol"`
	Start  interval.Time `json:"start"`
	End    interval.Time `json:"end"`
}

// jsonSequence is the wire form of one sequence.
type jsonSequence struct {
	ID        string         `json:"id"`
	Intervals []jsonInterval `json:"intervals"`
}

// jsonDatabase is the wire form of a database.
type jsonDatabase struct {
	Sequences []jsonSequence `json:"sequences"`
}

// WriteJSON writes the database as JSON.
func WriteJSON(w io.Writer, db *interval.Database) error {
	out := jsonDatabase{Sequences: make([]jsonSequence, len(db.Sequences))}
	for i := range db.Sequences {
		seq := &db.Sequences[i]
		js := jsonSequence{ID: seq.ID, Intervals: make([]jsonInterval, len(seq.Intervals))}
		for j, iv := range seq.Intervals {
			js.Intervals[j] = jsonInterval{Symbol: iv.Symbol, Start: iv.Start, End: iv.End}
		}
		out.Sequences[i] = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dataio: json write: %w", err)
	}
	return nil
}

// ReadJSON parses the output of WriteJSON, validating every interval.
func ReadJSON(r io.Reader) (*interval.Database, error) {
	var in jsonDatabase
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataio: json: %w", err)
	}
	db := &interval.Database{Sequences: make([]interval.Sequence, len(in.Sequences))}
	for i, js := range in.Sequences {
		seq := interval.Sequence{ID: js.ID, Intervals: make([]interval.Interval, len(js.Intervals))}
		for j, jiv := range js.Intervals {
			iv := interval.Interval{Symbol: jiv.Symbol, Start: jiv.Start, End: jiv.End}
			if err := iv.Valid(); err != nil {
				return nil, fmt.Errorf("dataio: json sequence %q interval %d: %w", js.ID, j, err)
			}
			seq.Intervals[j] = iv
		}
		seq.Normalize()
		db.Sequences[i] = seq
	}
	return db, nil
}

// jsonTemporalResult is the wire form of one temporal result. The
// pattern carries both its compact text form and the recovered Allen
// relations for direct display.
type jsonTemporalResult struct {
	Support   int    `json:"support"`
	Pattern   string `json:"pattern"`
	Relations string `json:"relations,omitempty"`
}

// WriteTemporalResultsJSON writes temporal results as a JSON array.
func WriteTemporalResultsJSON(w io.Writer, rs []pattern.TemporalResult) error {
	out := make([]jsonTemporalResult, len(rs))
	for i, r := range rs {
		out[i] = jsonTemporalResult{
			Support:   r.Support,
			Pattern:   r.Pattern.String(),
			Relations: r.Pattern.RelationSummary(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dataio: json results write: %w", err)
	}
	return nil
}

// ReadTemporalResultsJSON parses the output of
// WriteTemporalResultsJSON, re-validating every pattern.
func ReadTemporalResultsJSON(r io.Reader) ([]pattern.TemporalResult, error) {
	var in []jsonTemporalResult
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataio: json results: %w", err)
	}
	out := make([]pattern.TemporalResult, len(in))
	for i, jr := range in {
		p, err := pattern.ParseTemporal(jr.Pattern)
		if err != nil {
			return nil, fmt.Errorf("dataio: json result %d: %w", i, err)
		}
		out[i] = pattern.TemporalResult{Pattern: p, Support: jr.Support}
	}
	return out, nil
}

// jsonCoincResult is the wire form of one coincidence result.
type jsonCoincResult struct {
	Support int    `json:"support"`
	Pattern string `json:"pattern"`
}

// WriteCoincResultsJSON writes coincidence results as a JSON array.
func WriteCoincResultsJSON(w io.Writer, rs []pattern.CoincResult) error {
	out := make([]jsonCoincResult, len(rs))
	for i, r := range rs {
		out[i] = jsonCoincResult{Support: r.Support, Pattern: r.Pattern.String()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dataio: json results write: %w", err)
	}
	return nil
}

// ReadCoincResultsJSON parses the output of WriteCoincResultsJSON.
func ReadCoincResultsJSON(r io.Reader) ([]pattern.CoincResult, error) {
	var in []jsonCoincResult
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataio: json results: %w", err)
	}
	out := make([]pattern.CoincResult, len(in))
	for i, jr := range in {
		p, err := pattern.ParseCoinc(jr.Pattern)
		if err != nil {
			return nil, fmt.Errorf("dataio: json result %d: %w", i, err)
		}
		out[i] = pattern.CoincResult{Pattern: p, Support: jr.Support}
	}
	return out, nil
}
