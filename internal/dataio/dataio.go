// Package dataio reads and writes the on-disk formats used by the CLIs
// and examples:
//
//   - CSV interval format: one interval per record,
//     "sequence_id,symbol,start,end", with an optional header row.
//     Records of one sequence need not be adjacent.
//   - Line format: one sequence per line, "id: A[1,5] B[3,9] ...".
//   - Pattern files: one pattern per line, "support<TAB>pattern", for
//     both temporal and coincidence patterns.
//
// All readers report the offending line number on malformed input.
package dataio

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

// ReadCSV parses the CSV interval format. A first record whose third
// field is not an integer is treated as a header and skipped. Sequences
// appear in the output in order of first appearance of their id.
func ReadCSV(r io.Reader) (*interval.Database, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true

	db := &interval.Database{}
	index := make(map[string]int)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: csv: %w", err)
		}
		line++
		start, errS := strconv.ParseInt(strings.TrimSpace(rec[2]), 10, 64)
		end, errE := strconv.ParseInt(strings.TrimSpace(rec[3]), 10, 64)
		if errS != nil || errE != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("dataio: csv record %d: bad times %q,%q", line, rec[2], rec[3])
		}
		iv := interval.Interval{Symbol: rec[1], Start: start, End: end}
		if err := iv.Valid(); err != nil {
			return nil, fmt.Errorf("dataio: csv record %d: %w", line, err)
		}
		id := rec[0]
		si, ok := index[id]
		if !ok {
			si = len(db.Sequences)
			index[id] = si
			db.Sequences = append(db.Sequences, interval.Sequence{ID: id})
		}
		db.Sequences[si].Intervals = append(db.Sequences[si].Intervals, iv)
	}
	db.Normalize()
	return db, nil
}

// WriteCSV writes the database in CSV interval format with a header row.
func WriteCSV(w io.Writer, db *interval.Database) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sequence_id", "symbol", "start", "end"}); err != nil {
		return fmt.Errorf("dataio: csv write: %w", err)
	}
	for i := range db.Sequences {
		seq := &db.Sequences[i]
		for _, iv := range seq.Intervals {
			rec := []string{
				seq.ID,
				iv.Symbol,
				strconv.FormatInt(iv.Start, 10),
				strconv.FormatInt(iv.End, 10),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("dataio: csv write: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLines parses the line format: "id: A[1,5] B[3,9]". Empty lines and
// lines starting with '#' are skipped. A line without "id: " gets the
// auto id "s<line>".
func ReadLines(r io.Reader) (*interval.Database, error) {
	db := &interval.Database{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id := fmt.Sprintf("s%d", line)
		if i := strings.Index(text, ": "); i >= 0 && !strings.Contains(text[:i], "[") {
			id = text[:i]
			text = text[i+2:]
		}
		seq := interval.Sequence{ID: id}
		for _, tok := range strings.Fields(text) {
			iv, err := interval.Parse(tok)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: %w", line, err)
			}
			seq.Intervals = append(seq.Intervals, iv)
		}
		seq.Normalize()
		db.Sequences = append(db.Sequences, seq)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: lines: %w", err)
	}
	return db, nil
}

// WriteLines writes the database in line format.
func WriteLines(w io.Writer, db *interval.Database) error {
	bw := bufio.NewWriter(w)
	for i := range db.Sequences {
		seq := &db.Sequences[i]
		if _, err := bw.WriteString(seq.String()); err != nil {
			return fmt.Errorf("dataio: lines write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataio: lines write: %w", err)
		}
	}
	return bw.Flush()
}

// WriteTemporalResults writes temporal results as "support<TAB>pattern"
// lines.
func WriteTemporalResults(w io.Writer, rs []pattern.TemporalResult) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", r.Support, r.Pattern); err != nil {
			return fmt.Errorf("dataio: pattern write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTemporalResults parses the output of WriteTemporalResults.
func ReadTemporalResults(r io.Reader) ([]pattern.TemporalResult, error) {
	var out []pattern.TemporalResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sup, rest, err := splitSupport(text)
		if err != nil {
			return nil, fmt.Errorf("dataio: pattern line %d: %w", line, err)
		}
		p, err := pattern.ParseTemporal(rest)
		if err != nil {
			return nil, fmt.Errorf("dataio: pattern line %d: %w", line, err)
		}
		out = append(out, pattern.TemporalResult{Pattern: p, Support: sup})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: patterns: %w", err)
	}
	return out, nil
}

// WriteCoincResults writes coincidence results as "support<TAB>pattern"
// lines.
func WriteCoincResults(w io.Writer, rs []pattern.CoincResult) error {
	bw := bufio.NewWriter(w)
	for _, r := range rs {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", r.Support, r.Pattern); err != nil {
			return fmt.Errorf("dataio: pattern write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCoincResults parses the output of WriteCoincResults.
func ReadCoincResults(r io.Reader) ([]pattern.CoincResult, error) {
	var out []pattern.CoincResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sup, rest, err := splitSupport(text)
		if err != nil {
			return nil, fmt.Errorf("dataio: pattern line %d: %w", line, err)
		}
		p, err := pattern.ParseCoinc(rest)
		if err != nil {
			return nil, fmt.Errorf("dataio: pattern line %d: %w", line, err)
		}
		out = append(out, pattern.CoincResult{Pattern: p, Support: sup})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: patterns: %w", err)
	}
	return out, nil
}

func splitSupport(text string) (int, string, error) {
	i := strings.IndexByte(text, '\t')
	if i < 0 {
		return 0, "", fmt.Errorf("missing TAB between support and pattern in %q", text)
	}
	sup, err := strconv.Atoi(strings.TrimSpace(text[:i]))
	if err != nil {
		return 0, "", fmt.Errorf("bad support %q: %v", text[:i], err)
	}
	return sup, text[i+1:], nil
}
