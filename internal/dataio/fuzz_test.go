package dataio

import (
	"strings"
	"testing"
)

// FuzzReadCSV: the CSV reader must never panic and must only produce
// valid databases.
func FuzzReadCSV(f *testing.F) {
	f.Add("sequence_id,symbol,start,end\ns1,A,0,4\n")
	f.Add("s1,A,0,4\ns1,B,2,6\n")
	f.Add("s1,A,x,4\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("s1,A,4,0\n")
	f.Fuzz(func(t *testing.T, s string) {
		db, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		if vErr := db.Valid(); vErr != nil {
			t.Fatalf("accepted %q but database invalid: %v", s, vErr)
		}
	})
}

// FuzzReadLines: same for the line format, plus write/read round trip
// of whatever parses.
func FuzzReadLines(f *testing.F) {
	f.Add("s1: A[0,4] B[2,6]\n")
	f.Add("# comment\n\nA[1,5]\n")
	f.Add("x: garbage\n")
	f.Add("A[5,1]\n")
	f.Add(": \n")
	f.Fuzz(func(t *testing.T, s string) {
		db, err := ReadLines(strings.NewReader(s))
		if err != nil {
			return
		}
		if vErr := db.Valid(); vErr != nil {
			t.Fatalf("accepted %q but database invalid: %v", s, vErr)
		}
		var buf strings.Builder
		if err := WriteLines(&buf, db); err != nil {
			t.Fatalf("write-back of %q failed: %v", s, err)
		}
		back, err := ReadLines(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read of %q failed: %v", buf.String(), err)
		}
		if back.NumIntervals() != db.NumIntervals() {
			t.Fatalf("round trip changed interval count: %d -> %d", db.NumIntervals(), back.NumIntervals())
		}
	})
}

// FuzzReadTemporalResults: the pattern-file reader must never panic and
// accepted lines must round-trip.
func FuzzReadTemporalResults(f *testing.F) {
	f.Add("3\tA+ A-\n")
	f.Add("x\tA+ A-\n")
	f.Add("3 A+ A-\n")
	f.Add("# c\n\n1\t(A+ B+) (A- B-)\n")
	f.Fuzz(func(t *testing.T, s string) {
		rs, err := ReadTemporalResults(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteTemporalResults(&buf, rs); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadTemporalResults(strings.NewReader(buf.String()))
		if err != nil || len(back) != len(rs) {
			t.Fatalf("round trip broke: %v (%d vs %d)", err, len(back), len(rs))
		}
	})
}
