package dataio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"tpminer/internal/interval"
	"tpminer/internal/pattern"
)

func sampleDB() *interval.Database {
	db := interval.NewDatabase(
		[]interval.Interval{{Symbol: "A", Start: 0, End: 4}, {Symbol: "B", Start: 2, End: 6}},
		[]interval.Interval{{Symbol: "C", Start: -3, End: 0}},
	)
	db.Sequences[0].ID = "first"
	db.Sequences[1].ID = "second"
	return db
}

func TestCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db, back) {
		t.Errorf("round trip:\nwant %v\ngot  %v", db, back)
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "s1,A,0,4\ns1,B,2,6\ns2,C,1,2\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || len(db.Sequences[0].Intervals) != 2 {
		t.Errorf("parsed: %v", db)
	}
}

func TestReadCSVInterleavedSequences(t *testing.T) {
	in := "s1,A,0,4\ns2,C,1,2\ns1,B,2,6\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || len(db.Sequences[0].Intervals) != 2 {
		t.Errorf("interleaved records not grouped: %v", db)
	}
	if db.Sequences[0].ID != "s1" || db.Sequences[1].ID != "s2" {
		t.Errorf("order of first appearance not kept: %v", db)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"s1,A,0\n",             // wrong field count
		"s1,A,0,4\ns2,B,x,4\n", // bad time on a non-header row
		"s1,A,5,1\n",           // reversed interval
		"s1,,0,4\n",            // empty symbol
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted invalid input", in)
		}
	}
}

func TestLinesRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := WriteLines(&buf, db); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "first: A[0,4] B[2,6]\nsecond: C[-3,0]\n" {
		t.Errorf("WriteLines = %q", got)
	}
	back, err := ReadLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db, back) {
		t.Errorf("round trip:\nwant %v\ngot  %v", db, back)
	}
}

func TestReadLinesFeatures(t *testing.T) {
	in := "# comment\n\nA[1,5] B[3,9]\nnamed: C[0,2]\n"
	db, err := ReadLines(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("sequences = %d", db.Len())
	}
	if db.Sequences[0].ID != "s3" { // auto id carries the line number
		t.Errorf("auto id = %q", db.Sequences[0].ID)
	}
	if db.Sequences[1].ID != "named" {
		t.Errorf("named id = %q", db.Sequences[1].ID)
	}
}

func TestReadLinesError(t *testing.T) {
	if _, err := ReadLines(strings.NewReader("x: A[1,5] garbage\n")); err == nil {
		t.Error("accepted garbage token")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestTemporalResultsRoundTrip(t *testing.T) {
	p1, _ := pattern.ParseTemporal("A+ (A- B+) B-")
	p2, _ := pattern.ParseTemporal("C+ C-")
	rs := []pattern.TemporalResult{
		{Pattern: p1, Support: 12},
		{Pattern: p2, Support: 7},
	}
	var buf bytes.Buffer
	if err := WriteTemporalResults(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTemporalResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Support != 12 || !back[0].Pattern.Equal(p1) || !back[1].Pattern.Equal(p2) {
		t.Errorf("round trip: %v", back)
	}
}

func TestCoincResultsRoundTrip(t *testing.T) {
	p1, _ := pattern.ParseCoinc("{A B} {C}")
	rs := []pattern.CoincResult{{Pattern: p1, Support: 4}}
	var buf bytes.Buffer
	if err := WriteCoincResults(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCoincResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Support != 4 || !back[0].Pattern.Equal(p1) {
		t.Errorf("round trip: %v", back)
	}
}

func TestReadResultsErrors(t *testing.T) {
	for _, in := range []string{
		"12 A+ A-\n",    // space instead of tab
		"x\tA+ A-\n",    // bad support
		"3\tA+ A+ A-\n", // invalid pattern
	} {
		if _, err := ReadTemporalResults(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTemporalResults(%q) accepted invalid input", in)
		}
	}
	if _, err := ReadCoincResults(strings.NewReader("3\t{}\n")); err == nil {
		t.Error("ReadCoincResults accepted empty element")
	}
	// Comments and blank lines are fine.
	rs, err := ReadTemporalResults(strings.NewReader("# header\n\n3\tA+ A-\n"))
	if err != nil || len(rs) != 1 {
		t.Errorf("comment handling: %v %v", rs, err)
	}
}
