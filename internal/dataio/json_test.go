package dataio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"tpminer/internal/pattern"
)

func TestJSONRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"symbol": "A"`) {
		t.Errorf("json shape: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db, back) {
		t.Errorf("round trip:\nwant %v\ngot  %v", db, back)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // truncated
		`{"sequences":[{"id":"x","intervals":[{"symbol":"A","start":5,"end":1}]}]}`, // reversed
		`{"sequences":[{"id":"x","intervals":[{"symbol":"","start":0,"end":1}]}]}`,  // empty symbol
		`{"bogus":true}`, // unknown field
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) accepted invalid input", in)
		}
	}
}

func TestTemporalResultsJSONRoundTrip(t *testing.T) {
	p1, _ := pattern.ParseTemporal("A+ B+ A- B-")
	rs := []pattern.TemporalResult{{Pattern: p1, Support: 7}}
	var buf bytes.Buffer
	if err := WriteTemporalResultsJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A overlaps B") {
		t.Errorf("relations missing: %s", buf.String())
	}
	back, err := ReadTemporalResultsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Support != 7 || !back[0].Pattern.Equal(p1) {
		t.Errorf("round trip: %v", back)
	}
}

func TestCoincResultsJSONRoundTrip(t *testing.T) {
	p1, _ := pattern.ParseCoinc("{A B} {C}")
	rs := []pattern.CoincResult{{Pattern: p1, Support: 3}}
	var buf bytes.Buffer
	if err := WriteCoincResultsJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCoincResultsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Support != 3 || !back[0].Pattern.Equal(p1) {
		t.Errorf("round trip: %v", back)
	}
}

func TestResultsJSONErrors(t *testing.T) {
	if _, err := ReadTemporalResultsJSON(strings.NewReader(`[{"support":1,"pattern":"A-"}]`)); err == nil {
		t.Error("invalid pattern accepted")
	}
	if _, err := ReadCoincResultsJSON(strings.NewReader(`[{"support":1,"pattern":"{}"}]`)); err == nil {
		t.Error("invalid coincidence pattern accepted")
	}
	if _, err := ReadTemporalResultsJSON(strings.NewReader(`{`)); err == nil {
		t.Error("truncated json accepted")
	}
}
