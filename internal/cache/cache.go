// Package cache memoizes mining results. P-TPMiner is deterministic for
// a fixed (database, options) pair, so a mine over an unchanged dataset
// is perfectly reusable: the cache stores complete results keyed by
// (dataset name, monotonic dataset version, canonicalized options) and
// serves repeats without touching the miner. Invalidation is exact, not
// TTL-guessed — every mutation of a dataset bumps its version, which
// changes the key, so a stale entry can never be served (it simply ages
// out of the LRU).
//
// Two mechanisms share the package:
//
//   - A byte-budgeted LRU: entries carry their approximate resident
//     size; inserting past the budget evicts from the cold end. An entry
//     larger than the whole budget is not admitted at all.
//   - A single-flight group: N concurrent Do calls for the same key
//     collapse into one compute whose result fans out to all waiters.
//     Under a thundering herd of identical requests exactly one miner
//     run executes.
//
// The caller decides cacheability per result (compute returns a
// cacheable flag): truncated or otherwise non-deterministic results must
// never be stored, only fanned out to the waiters of that one flight.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Outcome says how a Do call was served.
type Outcome string

const (
	// Hit: the result was already cached.
	Hit Outcome = "hit"
	// Miss: this call ran the compute.
	Miss Outcome = "miss"
	// Coalesced: another in-flight call for the same key ran the
	// compute; this call waited and shares its result.
	Coalesced Outcome = "coalesced"
)

// ErrComputeAborted is delivered to coalesced waiters when the leader's
// compute panicked before producing a result. The leader itself sees the
// panic; waiters see this error and may retry.
var ErrComputeAborted = errors.New("cache: compute aborted by panic")

// Metrics receives cache events. Implementations must be safe for
// concurrent use. The zero behaviour (nil Metrics passed to New) is a
// no-op sink.
type Metrics interface {
	Hit()
	Miss()
	Coalesced()
	Evicted()
	// Resident reports the current resident-byte total after a mutation.
	Resident(bytes int64)
	// DegradedHit counts a Hit served while the owner reported itself
	// degraded (see Cache.SetDegraded) — the cache carrying traffic the
	// backing store currently cannot.
	DegradedHit()
}

type nopMetrics struct{}

func (nopMetrics) Hit()           {}
func (nopMetrics) Miss()          {}
func (nopMetrics) Coalesced()     {}
func (nopMetrics) Evicted()       {}
func (nopMetrics) Resident(int64) {}
func (nopMetrics) DegradedHit()   {}

// Key identifies one memoizable result. Options must be a canonical
// encoding of every result-determining option (and nothing else, so
// requests differing only in execution knobs — timeouts, parallelism —
// share an entry).
type Key struct {
	Dataset string
	Version uint64
	Options string
}

// entryOverhead approximates the per-entry bookkeeping cost (key
// strings, list element, map slot) added to the caller-reported size.
const entryOverhead = 128

type entry struct {
	key  Key
	val  any
	size int64
}

// flight is one in-progress compute; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a byte-budgeted LRU result cache fronted by a single-flight
// group. All methods are safe for concurrent use.
type Cache struct {
	budget int64
	met    Metrics

	mu       sync.Mutex
	ll       *list.List            // front = most recently used
	items    map[Key]*list.Element // element value: *entry
	flights  map[Key]*flight
	resident int64
	degraded func() bool // nil = never degraded
}

// New creates a cache holding at most budget bytes of results (plus a
// small constant per entry). met may be nil.
func New(budget int64, met Metrics) *Cache {
	if met == nil {
		met = nopMetrics{}
	}
	return &Cache{
		budget:  budget,
		met:     met,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

// SetDegraded installs a probe the cache consults on every hit: when it
// reports true the hit is additionally counted as a DegradedHit. The
// server wires this to its breaker so operators can see how much read
// traffic the cache absorbed while persistence was down. fn must be safe
// for concurrent use; nil (the default) disables the accounting.
func (c *Cache) SetDegraded(fn func() bool) {
	c.mu.Lock()
	c.degraded = fn
	c.mu.Unlock()
}

// Get returns the cached value for key, if present, marking it recently
// used. It does not join or start a flight.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the value for key, computing it at most once across all
// concurrent callers:
//
//   - cached → (value, Hit, nil) immediately;
//   - another call is already computing key → block until it finishes
//     (or ctx is done) and share its value and error, outcome Coalesced;
//   - otherwise run compute, fan the result out to any waiters that
//     arrived meanwhile, and — iff err is nil and cacheable is true —
//     store it under key, evicting cold entries past the byte budget.
//
// compute reports the value, its approximate resident size in bytes,
// whether it may be cached, and an error. Compute errors are returned to
// every caller of the flight but never cached. ctx only bounds the wait
// of a coalesced caller; the leader's compute governs its own lifetime.
func (c *Cache) Do(ctx context.Context, key Key, compute func() (val any, size int64, cacheable bool, err error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		degraded := c.degraded
		c.mu.Unlock()
		c.met.Hit()
		if degraded != nil && degraded() {
			c.met.DegradedHit()
		}
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.met.Coalesced()
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.met.Miss()

	finished := false
	defer func() {
		if finished {
			return
		}
		// compute panicked: release the flight so waiters don't hang and
		// future calls can retry, then let the panic continue.
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		f.err = ErrComputeAborted
		close(f.done)
	}()
	val, size, cacheable, err := compute()
	finished = true

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && cacheable {
		c.insertLocked(key, val, size+entryOverhead)
	}
	c.mu.Unlock()

	f.val, f.err = val, err
	close(f.done)
	return val, Miss, err
}

// insertLocked stores (key, val) at the hot end and evicts from the cold
// end until the budget holds. Oversized values are not admitted.
func (c *Cache) insertLocked(key Key, val any, size int64) {
	if size > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.resident += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.resident += size
	}
	for c.resident > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		c.removeLocked(cold)
		c.met.Evicted()
	}
	c.met.Resident(c.resident)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.resident -= e.size
}

// InvalidateDataset drops every cached entry for the named dataset,
// regardless of version, and returns how many were dropped. Version-
// keyed entries are already unreachable after a version bump; eager
// invalidation just returns their bytes to the budget immediately.
func (c *Cache) InvalidateDataset(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).key.Dataset == name {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	if n > 0 {
		c.met.Resident(c.resident)
	}
	return n
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// ResidentBytes returns the approximate bytes held by cached entries.
func (c *Cache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}
