package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingMetrics tallies cache events for assertions.
type countingMetrics struct {
	hits, misses, coalesced, evicted atomic.Int64
	degradedHits                     atomic.Int64
	resident                         atomic.Int64
}

func (m *countingMetrics) Hit()             { m.hits.Add(1) }
func (m *countingMetrics) Miss()            { m.misses.Add(1) }
func (m *countingMetrics) Coalesced()       { m.coalesced.Add(1) }
func (m *countingMetrics) Evicted()         { m.evicted.Add(1) }
func (m *countingMetrics) Resident(b int64) { m.resident.Store(b) }
func (m *countingMetrics) DegradedHit()     { m.degradedHits.Add(1) }

func key(ds string, ver uint64, opt string) Key {
	return Key{Dataset: ds, Version: ver, Options: opt}
}

// fill runs a trivially-cacheable compute for key, returning the value.
func fill(t *testing.T, c *Cache, k Key, val string, size int64) {
	t.Helper()
	got, outcome, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
		return val, size, true, nil
	})
	if err != nil || got != val || outcome != Miss {
		t.Fatalf("fill %v: got %v outcome %v err %v", k, got, outcome, err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	met := &countingMetrics{}
	c := New(1<<20, met)
	k := key("d", 1, "o")
	fill(t, c, k, "v", 10)

	got, outcome, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
		t.Fatal("compute ran on a hit")
		return nil, 0, false, nil
	})
	if err != nil || got != "v" || outcome != Hit {
		t.Fatalf("hit: got %v outcome %v err %v", got, outcome, err)
	}
	if met.hits.Load() != 1 || met.misses.Load() != 1 {
		t.Errorf("metrics: hits=%d misses=%d", met.hits.Load(), met.misses.Load())
	}
}

// TestDegradedHitAccounting: hits served while the degraded probe
// reports true are additionally counted as DegradedHit; hits while
// healthy, and misses at any time, are not.
func TestDegradedHitAccounting(t *testing.T) {
	met := &countingMetrics{}
	c := New(1<<20, met)
	var degraded atomic.Bool
	c.SetDegraded(degraded.Load)
	k := key("d", 1, "o")
	fill(t, c, k, "v", 10)

	hit := func() {
		t.Helper()
		if _, outcome, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
			return nil, 0, false, errors.New("compute ran on a hit")
		}); err != nil || outcome != Hit {
			t.Fatalf("outcome %v err %v, want hit", outcome, err)
		}
	}
	hit() // healthy hit
	degraded.Store(true)
	hit() // degraded hit
	hit() // degraded hit
	degraded.Store(false)
	hit() // healthy again

	if got := met.hits.Load(); got != 4 {
		t.Errorf("hits = %d, want 4", got)
	}
	if got := met.degradedHits.Load(); got != 2 {
		t.Errorf("degraded hits = %d, want 2", got)
	}
}

// TestVersionBumpChangesKey: the same dataset+options at a new version
// is a distinct key — exact invalidation without any explicit purge.
func TestVersionBumpChangesKey(t *testing.T) {
	c := New(1<<20, nil)
	fill(t, c, key("d", 1, "o"), "old", 10)

	ran := false
	got, outcome, _ := c.Do(context.Background(), key("d", 2, "o"), func() (any, int64, bool, error) {
		ran = true
		return "new", 10, true, nil
	})
	if !ran || got != "new" || outcome != Miss {
		t.Fatalf("bumped version served stale data: ran=%v got=%v outcome=%v", ran, got, outcome)
	}
}

func TestLRUEvictionByBudget(t *testing.T) {
	met := &countingMetrics{}
	// Room for two entries of size 100 (+overhead each).
	c := New(2*(100+entryOverhead), met)
	k1, k2, k3 := key("d", 1, "a"), key("d", 1, "b"), key("d", 1, "c")
	fill(t, c, k1, "1", 100)
	fill(t, c, k2, "2", 100)
	if _, ok := c.Get(k1); !ok { // touch k1 so k2 is coldest
		t.Fatal("k1 missing before eviction")
	}
	fill(t, c, k3, "3", 100)

	if _, ok := c.Get(k2); ok {
		t.Error("coldest entry k2 survived past the budget")
	}
	for _, k := range []Key{k1, k3} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %v evicted out of LRU order", k)
		}
	}
	if met.evicted.Load() != 1 {
		t.Errorf("evicted = %d, want 1", met.evicted.Load())
	}
	if got, want := c.ResidentBytes(), int64(2*(100+entryOverhead)); got != want {
		t.Errorf("resident = %d, want %d", got, want)
	}
	if met.resident.Load() != c.ResidentBytes() {
		t.Errorf("resident gauge %d != cache resident %d", met.resident.Load(), c.ResidentBytes())
	}
}

func TestOversizedEntryNotAdmitted(t *testing.T) {
	c := New(2048, nil)
	fill(t, c, key("d", 1, "small"), "s", 10)
	fill(t, c, key("d", 1, "big"), "b", 10_000) // over the whole budget

	if _, ok := c.Get(key("d", 1, "big")); ok {
		t.Error("oversized entry was admitted")
	}
	if _, ok := c.Get(key("d", 1, "small")); !ok {
		t.Error("admitting an oversized entry evicted an unrelated one")
	}
}

func TestNonCacheableNotStored(t *testing.T) {
	c := New(1<<20, nil)
	k := key("d", 1, "o")
	runs := 0
	for i := 0; i < 2; i++ {
		_, outcome, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
			runs++
			return "truncated", 10, false, nil
		})
		if err != nil || outcome != Miss {
			t.Fatalf("run %d: outcome %v err %v", i, outcome, err)
		}
	}
	if runs != 2 {
		t.Errorf("non-cacheable result was served from cache (runs=%d)", runs)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1<<20, nil)
	k := key("d", 1, "o")
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
			return nil, 0, true, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("run %d: err %v, want boom", i, err)
		}
	}
	if c.Len() != 0 {
		t.Error("failed compute left a cache entry")
	}
}

// TestSingleFlight: N concurrent Do calls for one key run compute exactly
// once; one caller reports Miss, the rest Coalesced, and all share the
// value.
func TestSingleFlight(t *testing.T) {
	met := &countingMetrics{}
	c := New(1<<20, met)
	k := key("d", 7, "o")

	const n = 16
	var runs atomic.Int64
	release := make(chan struct{})
	results := make(chan struct {
		val     any
		outcome Outcome
		err     error
	}, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, o, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
				runs.Add(1)
				<-release // hold the flight open so every caller coalesces
				return "shared", 10, true, nil
			})
			results <- struct {
				val     any
				outcome Outcome
				err     error
			}{v, o, err}
		}()
	}

	// Wait until all non-leader callers have joined the flight, then let
	// the leader finish. The coalesced metric ticks when a waiter joins.
	deadline := time.Now().Add(5 * time.Second)
	for met.coalesced.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers coalesced", met.coalesced.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	var misses, coalesced int
	for r := range results {
		if r.err != nil || r.val != "shared" {
			t.Fatalf("caller got %v err %v", r.val, r.err)
		}
		switch r.outcome {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Errorf("unexpected outcome %v", r.outcome)
		}
	}
	if runs.Load() != 1 {
		t.Errorf("compute ran %d times, want exactly 1", runs.Load())
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("outcomes: %d miss / %d coalesced, want 1 / %d", misses, coalesced, n-1)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New(1<<20, nil)
	k := key("d", 1, "o")
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		c.Do(context.Background(), k, func() (any, int64, bool, error) {
			close(leaderIn)
			<-release
			return "v", 1, true, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, outcome, err := c.Do(ctx, k, func() (any, int64, bool, error) {
		t.Error("waiter ran compute")
		return nil, 0, false, nil
	})
	if !errors.Is(err, context.Canceled) || outcome != Coalesced {
		t.Errorf("cancelled waiter: outcome %v err %v", outcome, err)
	}
	close(release)
}

// TestComputePanicReleasesFlight: a panicking leader must not strand
// waiters or poison the key.
func TestComputePanicReleasesFlight(t *testing.T) {
	c := New(1<<20, nil)
	k := key("d", 1, "o")

	leaderIn := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the leader's own panic continues
		c.Do(context.Background(), k, func() (any, int64, bool, error) {
			close(leaderIn)
			time.Sleep(20 * time.Millisecond) // let the waiter join
			panic("injected")
		})
	}()
	<-leaderIn
	go func() {
		_, _, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
			return "retry", 1, true, nil
		})
		waiterErr <- err
	}()

	select {
	case err := <-waiterErr:
		// The waiter either coalesced onto the doomed flight (and got
		// ErrComputeAborted) or arrived after the cleanup and computed
		// fresh (nil). Both are sound; hanging is the failure mode.
		if err != nil && !errors.Is(err, ErrComputeAborted) {
			t.Errorf("waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after leader panic")
	}

	// The key must be usable again.
	got, _, err := c.Do(context.Background(), k, func() (any, int64, bool, error) {
		return "after", 1, true, nil
	})
	if err != nil || (got != "after" && got != "retry") {
		t.Errorf("key poisoned after panic: got %v err %v", got, err)
	}
}

func TestInvalidateDataset(t *testing.T) {
	c := New(1<<20, nil)
	fill(t, c, key("a", 1, "x"), "1", 10)
	fill(t, c, key("a", 1, "y"), "2", 10)
	fill(t, c, key("b", 1, "x"), "3", 10)

	if n := c.InvalidateDataset("a"); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get(key("a", 1, "x")); ok {
		t.Error("invalidated entry still served")
	}
	if _, ok := c.Get(key("b", 1, "x")); !ok {
		t.Error("unrelated dataset invalidated")
	}
	if got, want := c.ResidentBytes(), int64(10+entryOverhead); got != want {
		t.Errorf("resident = %d, want %d", got, want)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines across
// overlapping keys; run under -race this is the data-race gate.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(4*(64+entryOverhead), nil) // tight budget so eviction churns
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("d%d", i%3), uint64(i%5), "o")
				switch i % 7 {
				case 5:
					c.InvalidateDataset(k.Dataset)
				case 6:
					c.Get(k)
				default:
					c.Do(context.Background(), k, func() (any, int64, bool, error) {
						return i, 64, i%2 == 0, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
}
