module tpminer

go 1.22
