GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; the cancellation/backpressure tests exercise real
# concurrency, so this is the form CI should run.
race:
	$(GO) test -race ./...

# The full pre-merge gate.
verify: build vet race

bench:
	$(GO) test -bench=. -benchmem
