GO ?= go

.PHONY: build vet test race lint contract recovery chaos stream dist verify bench bench-all profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Unchecked-error lint over the durability layers, where a dropped
# error result means silent data loss, plus the server and jobs
# packages, where a dropped error can lose an ingest batch or a job
# journal entry. vet plus the repo's own errcheck-style checker
# (cmd/errlint); assign to _ to mark a deliberately best-effort call.
lint: vet
	$(GO) run ./cmd/errlint ./internal/persist ./internal/blob ./internal/server ./internal/jobs ./internal/remote

# Race-enabled run; the cancellation/backpressure tests exercise real
# concurrency, so this is the form CI should run.
race:
	$(GO) test -race ./...

# Route contract: every route the server serves must be documented in
# the README API reference table (and actually resolve on the mux).
contract:
	$(GO) test ./internal/server -run 'TestRoutesDocumentedInREADME|TestRouteTableIsServed'

# Crash-recovery gate: the persist fault-injection tests (torn tail,
# corrupt CRC mid-log, partial snapshot, crash during compaction) and
# the server restart round-trips, under the race detector. `race`
# already runs these; this target exists to run them alone and by name,
# so a durability regression is unmissable in CI output.
recovery:
	$(GO) test -race ./internal/persist -run 'TestRecovery|TestCrash|TestClean'
	$(GO) test -race ./internal/server -run 'TestRestart|TestPersisted'

# Chaos gate: the randomized fault-schedule suite plus the persist
# fault-injection tests, under the race detector. The headline test
# draws a fresh seed each run and logs it; replay a failure exactly
# with TPMD_CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race ./internal/server -run 'TestChaos' -count=1
	$(GO) test -race ./internal/persist -run 'TestBootRemoves|TestWALWriteRetries|TestPermanentFailure|TestFsyncFailure|TestSnapshotFault' -count=1

# Streaming gate: the NDJSON-ingest + continuous-job end-to-end test
# (cumulative SSE deltas must equal a fresh batch mine byte-for-byte,
# across a restart), the SSE lifecycle tests (disconnect leaves no
# goroutines, slow consumers are dropped not blocked on), and job
# durability — all under the race detector, since every one of them
# exercises the jobs manager's concurrency.
stream:
	$(GO) test -race ./internal/server -run 'TestStreaming|TestSSE|TestJobDelete' -count=1
	$(GO) test -race ./internal/jobs

# Distributed-mining gate: the remote-worker conformance suite, the
# push/registry/failover unit tests, the chaos schedule over flaky
# workers, and the server-level acceptance test (remote byte-identical
# to local sharded, exact failover when a worker dies mid-mine, no
# goroutine leaks) — all under the race detector, since the pool client
# and registry are exercised concurrently by the coordinator's fan-out.
dist:
	$(GO) test -race ./internal/remote -count=1
	$(GO) test -race ./internal/shard -run 'WorkerConformance|FanOutError|WorkerAddr'
	$(GO) test -race ./internal/server -run 'TestRemoteMineMatchesLocal' -count=1

# The full pre-merge gate. vet and race cover every package, including
# internal/obs and the instrumented server/scheduler paths; lint fails
# on unchecked errors in the durability, server, and jobs layers;
# contract keeps the README API table in lockstep with the served
# routes; recovery re-runs the persist crash-recovery suite by name;
# chaos re-rolls the randomized fault schedule with a fresh seed;
# stream re-runs the streaming/SSE/job-durability suite by name; dist
# re-runs the remote-worker/failover suite by name.
verify: build vet lint race contract recovery chaos stream dist

# Runs the Fig-1 workload (at GOMAXPROCS=1 and =NumCPU), the sharded
# Fig-1a series, the remote-worker Fig-1a series over loopback HTTP,
# and the core micro-benchmarks, writing BENCH_core.json
# with speedups against bench/baseline.json. Gates: no workload point
# below 0.95x of the committed baseline, shards=1 within 0.95x of
# unsharded (coordinator overhead), and — on multi-core machines only —
# shards≈NumCPU at least 1.5x faster than shards=1.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json -min-speedup 0.95 -min-shard-ratio 0.95 -min-sharded-speedup 1.5

# The old kitchen-sink benchmark run, kept for exploratory use.
bench-all:
	$(GO) test -bench=. -benchmem

# Captures CPU and heap profiles of the sharded Fig-1a workload into
# ./profiles/ for pprof inspection:
#   go tool pprof profiles/fig1a_sharded_cpu.pprof
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench Fig1aSharded -benchtime 20x \
		-cpuprofile profiles/fig1a_sharded_cpu.pprof \
		-memprofile profiles/fig1a_sharded_mem.pprof -o profiles/tpminer.test .
