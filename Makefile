GO ?= go

.PHONY: build vet test race contract recovery chaos verify bench bench-all

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; the cancellation/backpressure tests exercise real
# concurrency, so this is the form CI should run.
race:
	$(GO) test -race ./...

# Route contract: every route the server serves must be documented in
# the README API reference table (and actually resolve on the mux).
contract:
	$(GO) test ./internal/server -run 'TestRoutesDocumentedInREADME|TestRouteTableIsServed'

# Crash-recovery gate: the persist fault-injection tests (torn tail,
# corrupt CRC mid-log, partial snapshot, crash during compaction) and
# the server restart round-trips, under the race detector. `race`
# already runs these; this target exists to run them alone and by name,
# so a durability regression is unmissable in CI output.
recovery:
	$(GO) test -race ./internal/persist -run 'TestRecovery|TestCrash|TestClean'
	$(GO) test -race ./internal/server -run 'TestRestart|TestPersisted'

# Chaos gate: the randomized fault-schedule suite plus the persist
# fault-injection tests, under the race detector. The headline test
# draws a fresh seed each run and logs it; replay a failure exactly
# with TPMD_CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race ./internal/server -run 'TestChaos' -count=1
	$(GO) test -race ./internal/persist -run 'TestBootRemoves|TestWALWriteRetries|TestPermanentFailure|TestFsyncFailure|TestSnapshotFault' -count=1

# The full pre-merge gate. vet and race cover every package, including
# internal/obs and the instrumented server/scheduler paths; contract
# keeps the README API table in lockstep with the served routes;
# recovery re-runs the persist crash-recovery suite by name; chaos
# re-rolls the randomized fault schedule with a fresh seed.
verify: build vet race contract recovery chaos

# Runs the Fig-1 workload and core micro-benchmarks and writes
# BENCH_core.json with speedups against bench/baseline.json. Fails if
# any workload point drops below 0.95x of the committed baseline, so
# instrumentation overhead can never silently eat the PR 2 speedups.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json -min-speedup 0.95

# The old kitchen-sink benchmark run, kept for exploratory use.
bench-all:
	$(GO) test -bench=. -benchmem
