GO ?= go

.PHONY: build vet test race verify bench bench-all

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run; the cancellation/backpressure tests exercise real
# concurrency, so this is the form CI should run.
race:
	$(GO) test -race ./...

# The full pre-merge gate.
verify: build vet race

# Runs the Fig-1 workload and core micro-benchmarks and writes
# BENCH_core.json with speedups against bench/baseline.json.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

# The old kitchen-sink benchmark run, kept for exploratory use.
bench-all:
	$(GO) test -bench=. -benchmem
