package tpminer_test

import (
	"bytes"
	"strings"
	"testing"

	"tpminer"
)

func apiSampleDB() *tpminer.Database {
	return tpminer.NewDatabase(
		[]tpminer.Interval{
			{Symbol: "A", Start: 0, End: 4},
			{Symbol: "B", Start: 2, End: 6},
		},
		[]tpminer.Interval{
			{Symbol: "A", Start: 10, End: 14},
			{Symbol: "B", Start: 12, End: 16},
		},
		[]tpminer.Interval{
			{Symbol: "B", Start: 0, End: 2},
		},
	)
}

func TestPublicAPITemporal(t *testing.T) {
	db := apiSampleDB()
	rs, stats, err := tpminer.MineTemporalPatterns(db, tpminer.Options{MinSupport: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sequences != 3 || stats.MinCount != 2 {
		t.Errorf("stats: %+v", stats)
	}
	var overlap *tpminer.TemporalResult
	for i := range rs {
		if rs[i].Pattern.String() == "A+ B+ A- B-" {
			overlap = &rs[i]
		}
	}
	if overlap == nil || overlap.Support != 2 {
		t.Fatalf("A-overlaps-B missing or wrong support: %v", rs)
	}
	if got := overlap.Pattern.RelationSummary(); got != "A overlaps B" {
		t.Errorf("RelationSummary = %q", got)
	}
}

func TestPublicAPICoincidence(t *testing.T) {
	db := apiSampleDB()
	rs, _, err := tpminer.MineCoincidencePatterns(db, tpminer.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "{A B}" && r.Support == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("{A B} missing: %v", rs)
	}
}

func TestPublicAPIParseAndSupport(t *testing.T) {
	db := apiSampleDB()
	p, err := tpminer.ParseTemporalPattern("A+ B+ A- B-")
	if err != nil {
		t.Fatal(err)
	}
	sup, err := tpminer.Support(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if sup != 2 {
		t.Errorf("Support = %d, want 2", sup)
	}
	if got := tpminer.SupportAnyBinding(db, p); got != 2 {
		t.Errorf("SupportAnyBinding = %d, want 2", got)
	}
	cp, err := tpminer.ParseCoincidencePattern("{A B}")
	if err != nil {
		t.Fatal(err)
	}
	if cp.String() != "{A B}" {
		t.Errorf("coincidence parse: %v", cp)
	}
}

func TestPublicAPIRelate(t *testing.T) {
	a := tpminer.Interval{Symbol: "a", Start: 0, End: 5}
	b := tpminer.Interval{Symbol: "b", Start: 5, End: 9}
	if got := tpminer.Relate(a, b); got != tpminer.Meets {
		t.Errorf("Relate = %v, want meets", got)
	}
	if tpminer.Meets.Inverse() != tpminer.MetBy {
		t.Error("re-exported relation constants broken")
	}
}

func TestPublicAPIIO(t *testing.T) {
	db := apiSampleDB()
	var buf bytes.Buffer
	if err := tpminer.WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := tpminer.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || back.NumIntervals() != db.NumIntervals() {
		t.Errorf("csv round trip: %v", back)
	}

	buf.Reset()
	if err := tpminer.WriteLines(&buf, db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A[0,4] B[2,6]") {
		t.Errorf("lines output: %q", buf.String())
	}
	back, err = tpminer.ReadLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("lines round trip: %v", back)
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	db := apiSampleDB()

	// Top-k.
	topk, _, err := tpminer.MineTopKTemporalPatterns(db, 2, tpminer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(topk) != 2 {
		t.Errorf("topk = %d patterns", len(topk))
	}

	// Closed / maximal.
	all, _, err := tpminer.MineTemporalPatterns(db, tpminer.Options{MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := tpminer.ClosedPatterns(all)
	maximal := tpminer.MaximalPatterns(all)
	if len(maximal) > len(closed) || len(closed) > len(all) {
		t.Errorf("filter sizes: %d/%d/%d", len(maximal), len(closed), len(all))
	}

	// Rules.
	rules, err := tpminer.DeriveRules(all, db, tpminer.RuleOptions{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Error("no rules derived")
	}

	// Rendering.
	out := tpminer.RenderSequence(db.Sequences[0], tpminer.RenderOptions{Width: 20})
	if !strings.Contains(out, "A") {
		t.Errorf("render: %q", out)
	}
	if len(all) > 0 {
		if got := tpminer.RenderPattern(all[0].Pattern, tpminer.RenderOptions{Width: 20}); got == "" {
			t.Error("empty pattern rendering")
		}
	}
}

func TestPublicAPIWindowsAndIncremental(t *testing.T) {
	// Windowing.
	long := tpminer.Sequence{ID: "trace"}
	for i := int64(0); i < 10; i++ {
		long.Intervals = append(long.Intervals,
			tpminer.Interval{Symbol: "A", Start: i * 20, End: i*20 + 5},
			tpminer.Interval{Symbol: "B", Start: i*20 + 2, End: i*20 + 8},
		)
	}
	windows, err := tpminer.SlideWindows(long, tpminer.WindowConfig{
		Width: 20, Policy: tpminer.WindowWholeIfStarts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows.Len() < 8 {
		t.Fatalf("windows = %d", windows.Len())
	}
	rs, _, err := tpminer.MineTemporalPatterns(windows, tpminer.Options{MinSupport: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Pattern.String() == "A+ B+ A- B-" {
			found = true
		}
	}
	if !found {
		t.Errorf("windowed motif missing: %v", rs)
	}

	// Incremental.
	inc, err := tpminer.NewIncrementalMiner(tpminer.Options{MinSupport: 0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := inc.Append(tpminer.Sequence{
			ID: "s",
			Intervals: []tpminer.Interval{
				{Symbol: "A", Start: 0, End: 4},
				{Symbol: "B", Start: 2, End: 6},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := inc.Patterns()
	if len(got) == 0 {
		t.Fatal("incremental returned nothing")
	}
	foundInc := false
	for _, r := range got {
		if r.Pattern.String() == "A+ B+ A- B-" && r.Support == 6 {
			foundInc = true
		}
	}
	if !foundInc {
		t.Errorf("incremental results: %v", got)
	}
	if st := inc.Stats(); st.Appends != 6 {
		t.Errorf("stats: %+v", st)
	}
}
