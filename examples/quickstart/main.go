// Quickstart: build a tiny interval database in code, mine both pattern
// types, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tpminer"
)

func main() {
	// Three monitoring traces. Each interval is (symbol, start, end):
	// "deploy" spans overlap "errors" spikes in two of them.
	db := tpminer.NewDatabase(
		[]tpminer.Interval{
			{Symbol: "deploy", Start: 0, End: 30},
			{Symbol: "errors", Start: 20, End: 50},
			{Symbol: "pager", Start: 45, End: 60},
		},
		[]tpminer.Interval{
			{Symbol: "deploy", Start: 100, End: 140},
			{Symbol: "errors", Start: 120, End: 170},
			{Symbol: "pager", Start: 165, End: 180},
		},
		[]tpminer.Interval{
			{Symbol: "deploy", Start: 10, End: 40},
			{Symbol: "errors", Start: 80, End: 90},
		},
	)

	// Temporal patterns: exact arrangements, at least 2 of 3 traces.
	results, stats, err := tpminer.MineTemporalPatterns(db, tpminer.Options{MinSupport: 0.66})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal patterns (%d, mined in %s):\n", len(results), stats.Elapsed)
	for _, r := range results {
		fmt.Printf("  %d/3  %-40s %s\n", r.Support, r.Pattern.String(), r.Pattern.RelationSummary())
	}

	// Coincidence patterns: what is active at the same time, in order.
	coinc, _, err := tpminer.MineCoincidencePatterns(db, tpminer.Options{MinSupport: 0.66})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoincidence patterns (%d, top 10 shown):\n", len(coinc))
	for i, r := range coinc {
		if i >= 10 {
			break
		}
		fmt.Printf("  %d/3  %s\n", r.Support, r.Pattern)
	}

	// Check a specific hypothesis: does "deploy overlaps errors" hold
	// often? Build the pattern from text and count its support.
	p, err := tpminer.ParseTemporalPattern("deploy+ errors+ deploy- errors-")
	if err != nil {
		log.Fatal(err)
	}
	sup, err := tpminer.Support(db, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q (%s) holds in %d of %d traces\n",
		p.String(), p.RelationSummary(), sup, db.Len())
}
