// Stockscan: mine co-movement arrangements from simulated stock trend
// intervals — the market case study of the paper's practicability claim.
//
// One sequence per trading month; intervals are maximal runs of rising
// ("T<i>.up") or falling ("T<i>.down") days per ticker. Roughly a third
// of the months are market-wide rallies or sell-offs, so same-direction
// trend intervals across tickers overlap; the miner should surface that
// structure without being told.
//
//	go run ./examples/stockscan
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tpminer"
)

const (
	months  = 300
	tickers = 5
	days    = 22
)

func main() {
	rng := rand.New(rand.NewSource(7)) // deterministic demo
	db := &tpminer.Database{}
	regimes := 0
	for m := 0; m < months; m++ {
		bias := 0.0
		if rng.Float64() < 0.35 {
			bias = 0.9 // market-wide rally this month
			regimes++
		}
		var ivs []tpminer.Interval
		for tk := 0; tk < tickers; tk++ {
			ivs = append(ivs, trendIntervals(rng, fmt.Sprintf("T%d", tk), bias)...)
		}
		seq := tpminer.Sequence{ID: fmt.Sprintf("month%03d", m), Intervals: ivs}
		db.Sequences = append(db.Sequences, seq)
	}
	fmt.Printf("%d months (%d with a planted rally), %d trend intervals\n\n",
		months, regimes, db.NumIntervals())

	// Coincidence view first: which trend combinations are co-active?
	coinc, _, err := tpminer.MineCoincidencePatterns(db, tpminer.Options{
		MinSupport:  0.25,
		MaxElements: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top co-active trend sets (coincidence patterns):")
	shown := 0
	for _, r := range coinc {
		// Keep only genuinely co-active sets: one element holding two
		// or more distinct trend symbols.
		if r.Pattern.Len() != 1 || len(r.Pattern.Elements[0]) < 2 {
			continue
		}
		fmt.Printf("  %3d months  %s\n", r.Support, r.Pattern)
		if shown++; shown >= 8 {
			break
		}
	}

	// Temporal view: exact arrangements between two tickers' up-trends.
	temporal, _, err := tpminer.MineTemporalPatterns(db, tpminer.Options{
		MinSupport:   0.2,
		MaxIntervals: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop cross-ticker up-trend arrangements (temporal patterns):")
	shown = 0
	for _, r := range temporal {
		if r.Pattern.NumIntervals() < 2 || !crossTickerUp(r) {
			continue
		}
		fmt.Printf("  %3d months  %-34s %s\n", r.Support, r.Pattern.String(), r.Pattern.RelationSummary())
		if shown++; shown >= 8 {
			break
		}
	}
}

// trendIntervals simulates one ticker-month and emits maximal up/down
// run intervals (runs shorter than 2 days are ignored as noise).
func trendIntervals(rng *rand.Rand, ticker string, bias float64) []tpminer.Interval {
	var ivs []tpminer.Interval
	emit := func(kind string, runStart, d int) {
		if d-runStart >= 2 {
			ivs = append(ivs, tpminer.Interval{
				Symbol: ticker + "." + kind,
				Start:  int64(runStart),
				End:    int64(d - 1),
			})
		}
	}
	upStart, downStart := -1, -1
	for d := 0; d <= days; d++ {
		move := 0.0
		if d < days {
			move = rng.NormFloat64() + bias
		}
		if move > 0.1 {
			if upStart < 0 {
				upStart = d
			}
		} else if upStart >= 0 {
			emit("up", upStart, d)
			upStart = -1
		}
		if move < -0.1 {
			if downStart < 0 {
				downStart = d
			}
		} else if downStart >= 0 {
			emit("down", downStart, d)
			downStart = -1
		}
	}
	return ivs
}

// crossTickerUp keeps patterns whose intervals are up-trends of two
// different tickers.
func crossTickerUp(r tpminer.TemporalResult) bool {
	syms := make(map[string]bool)
	for _, el := range r.Pattern.Elements {
		for _, e := range el {
			if !strings.HasSuffix(e.Symbol, ".up") {
				return false
			}
			syms[e.Symbol] = true
		}
	}
	return len(syms) == 2
}
