// Monitoring: mine one long operations timeline — a single trace, not a
// database — by slicing it into sliding windows, then visualize the
// strongest arrangements as ASCII timelines.
//
// The simulated trace interleaves deploy windows, error-rate spikes,
// pager incidents, and autoscaling events over 30 days of minutes. The
// planted causal chain is: a deploy overlaps an error spike, which is
// followed by a pager incident, during which autoscaling runs. Support
// counts 12-hour windows, so "support 40" reads "this arrangement
// occurred in 40 half-day windows".
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tpminer"
)

const (
	day     = int64(24 * 60) // minutes
	horizon = 30 * day
)

func main() {
	trace := simulateTrace(rand.New(rand.NewSource(11)))
	fmt.Printf("trace: %d intervals over %d days\n\n", len(trace.Intervals), horizon/day)

	// Slice into overlapping 12-hour windows, advancing by 6 hours.
	windows, err := tpminer.SlideWindows(trace, tpminer.WindowConfig{
		Width:     12 * 60,
		Stride:    6 * 60,
		Policy:    tpminer.WindowWholeIfStarts,
		DropEmpty: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sliced into %d windows of 12h (stride 6h)\n\n", windows.Len())

	// Top arrangements across windows, at most 3 intervals each.
	results, _, err := tpminer.MineTopKTemporalPatterns(windows, 25, tpminer.Options{
		MaxIntervals: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strongest multi-event arrangements across windows:")
	shown := 0
	for _, r := range results {
		if r.Pattern.NumIntervals() < 2 {
			continue
		}
		fmt.Printf("\nin %d windows: %s\n", r.Support, r.Pattern.RelationSummary())
		fmt.Print(tpminer.RenderPattern(r.Pattern, tpminer.RenderOptions{Width: 44}))
		if shown++; shown >= 4 {
			break
		}
	}

	// Zoom into one raw incident for context.
	fmt.Println("\nfirst day of the raw trace:")
	firstDay := tpminer.Sequence{ID: "day0"}
	for _, iv := range trace.Intervals {
		if iv.Start < day {
			firstDay.Intervals = append(firstDay.Intervals, iv)
		}
	}
	fmt.Print(tpminer.RenderSequence(firstDay, tpminer.RenderOptions{Width: 60}))
}

// simulateTrace builds the 30-day operations timeline.
func simulateTrace(rng *rand.Rand) tpminer.Sequence {
	trace := tpminer.Sequence{ID: "ops"}
	add := func(sym string, start, dur int64) {
		if start < 0 {
			start = 0
		}
		end := start + dur
		if end > horizon {
			end = horizon
		}
		if end <= start {
			return
		}
		trace.Intervals = append(trace.Intervals, tpminer.Interval{Symbol: sym, Start: start, End: end})
	}

	// Deploys: 1-3 per day; a third of them go bad.
	for d := int64(0); d < 30; d++ {
		for i := 0; i < 1+rng.Intn(3); i++ {
			t := d*day + rng.Int63n(day-120)
			add("deploy", t, 20+rng.Int63n(40))
			if rng.Float64() < 0.35 {
				// The planted incident chain.
				spike := t + 10 + rng.Int63n(15)
				add("errors", spike, 60+rng.Int63n(90))
				page := spike + 70 + rng.Int63n(60)
				add("pager", page, 30+rng.Int63n(45))
				add("autoscale", page+5, 15+rng.Int63n(15))
			}
		}
	}
	// Background noise: scheduled jobs and unrelated blips.
	for i := 0; i < 120; i++ {
		add("cronjob", rng.Int63n(horizon), 10+rng.Int63n(30))
	}
	for i := 0; i < 25; i++ {
		add("errors", rng.Int63n(horizon), 20+rng.Int63n(40))
	}
	trace.Normalize()
	return trace
}
