// Gesture: compare the two pattern types on sign-language-like data,
// where facial grammar markers span several manual signs — the workload
// family (ASL corpora) that motivated interval-based mining.
//
// The endpoint (temporal) view shows *how* a marker relates to the signs
// it scopes over (overlaps, contains, co-starts); the coincidence view
// shows only *that* they co-occur. Running both on the same utterances
// makes the difference concrete.
//
//	go run ./examples/gesture
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tpminer"
)

const utterances = 300

func main() {
	rng := rand.New(rand.NewSource(5))
	db := &tpminer.Database{}
	for u := 0; u < utterances; u++ {
		db.Sequences = append(db.Sequences, utterance(rng, u))
	}

	// A specific (marker, sign-word) arrangement is rarer than the bare
	// co-occurrence, so the temporal view uses a lower threshold.
	opt := tpminer.Options{MinSupport: 0.06, MaxIntervals: 2}
	temporal, _, err := tpminer.MineTemporalPatterns(db, opt)
	if err != nil {
		log.Fatal(err)
	}
	coinc, _, err := tpminer.MineCoincidencePatterns(db, tpminer.Options{
		MinSupport: 0.15, MaxElements: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d utterances; %d temporal patterns at 6%%, %d coincidence patterns at 15%%\n\n",
		utterances, len(temporal), len(coinc))

	fmt.Println("marker-sign arrangements (temporal view — the relation is explicit):")
	shown := 0
	for _, r := range temporal {
		if !mixesMarkerAndSign(r.Pattern) {
			continue
		}
		fmt.Printf("  %3d  %-36s %s\n", r.Support, r.Pattern.String(), r.Pattern.RelationSummary())
		if shown++; shown >= 8 {
			break
		}
	}

	fmt.Println("\nmarker-sign co-occurrences (coincidence view — relation is lost):")
	shown = 0
	for _, r := range coinc {
		if !coincMixes(r.Pattern) {
			continue
		}
		fmt.Printf("  %3d  %s\n", r.Support, r.Pattern)
		if shown++; shown >= 8 {
			break
		}
	}
}

// utterance builds one simulated utterance: consecutive manual signs
// plus facial grammar markers that span them.
func utterance(rng *rand.Rand, id int) tpminer.Sequence {
	nSigns := 3 + rng.Intn(4)
	var ivs []tpminer.Interval
	t := int64(2)
	spans := make([][2]int64, nSigns)
	for i := 0; i < nSigns; i++ {
		dur := 3 + rng.Int63n(6)
		ivs = append(ivs, tpminer.Interval{
			Symbol: fmt.Sprintf("sign.w%d", rng.Intn(12)),
			Start:  t, End: t + dur,
		})
		spans[i] = [2]int64{t, t + dur}
		t += dur + rng.Int63n(2)
	}
	// wh-question: marker overlaps the last sign and extends past it.
	if rng.Float64() < 0.4 {
		ivs = append(ivs, tpminer.Interval{
			Symbol: "face.wh",
			Start:  spans[nSigns-1][0] + 1,
			End:    spans[nSigns-1][1] + 2,
		})
	}
	// negation: head shake contains one middle sign.
	if rng.Float64() < 0.3 {
		i := rng.Intn(nSigns)
		ivs = append(ivs, tpminer.Interval{
			Symbol: "face.neg",
			Start:  spans[i][0] - 1,
			End:    spans[i][1] + 1,
		})
	}
	return tpminer.Sequence{ID: fmt.Sprintf("utt%03d", id), Intervals: ivs}
}

func mixesMarkerAndSign(p tpminer.TemporalPattern) bool {
	var face, sign bool
	for _, el := range p.Elements {
		for _, e := range el {
			if strings.HasPrefix(e.Symbol, "face.") {
				face = true
			}
			if strings.HasPrefix(e.Symbol, "sign.") {
				sign = true
			}
		}
	}
	return face && sign
}

func coincMixes(p tpminer.CoincidencePattern) bool {
	var face, sign bool
	for _, el := range p.Elements {
		for _, s := range el {
			if strings.HasPrefix(s, "face.") {
				face = true
			}
			if strings.HasPrefix(s, "sign.") {
				sign = true
			}
		}
	}
	return face && sign
}
