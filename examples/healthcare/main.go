// Healthcare: recover planted clinical episode arrangements from
// simulated patient histories — the case study showing why *arrangement*
// matters, not just co-occurrence.
//
// Each patient is a sequence of active-condition intervals (days).
// Three episode shapes are planted: "fever during infection with an
// overlapping antibiotic course", "diabetes during hypertension", and
// "pain before an opioid course that overlaps insomnia". The program
// mines temporal patterns, prints the strongest multi-condition
// arrangements, and verifies the planted episodes were recovered.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tpminer"
)

const patients = 400

// episodes are the planted templates: concrete relative day spans whose
// pairwise Allen relations every embedding preserves.
var episodes = map[string][]tpminer.Interval{
	"infection course": {
		{Symbol: "infection", Start: 0, End: 14},
		{Symbol: "fever", Start: 2, End: 9},
		{Symbol: "antibiotic", Start: 4, End: 12},
	},
	"chronic pair": {
		{Symbol: "hypertension", Start: 0, End: 60},
		{Symbol: "diabetes", Start: 10, End: 50},
	},
	"pain cascade": {
		{Symbol: "pain", Start: 0, End: 6},
		{Symbol: "opioid", Start: 8, End: 20},
		{Symbol: "insomnia", Start: 15, End: 30},
	},
}

var noise = []string{"asthma", "allergy", "migraine", "dermatitis", "anemia"}

func main() {
	rng := rand.New(rand.NewSource(3))
	db := &tpminer.Database{}
	for p := 0; p < patients; p++ {
		var ivs []tpminer.Interval
		for _, tpl := range episodes {
			if rng.Float64() >= 0.4 {
				continue
			}
			off := rng.Int63n(300)
			for _, iv := range tpl {
				ivs = append(ivs, tpminer.Interval{Symbol: iv.Symbol, Start: iv.Start + off, End: iv.End + off})
			}
		}
		for i := 0; i < rng.Intn(6); i++ {
			start := rng.Int63n(350)
			ivs = append(ivs, tpminer.Interval{
				Symbol: noise[rng.Intn(len(noise))],
				Start:  start,
				End:    start + 1 + rng.Int63n(14),
			})
		}
		db.Sequences = append(db.Sequences, tpminer.Sequence{
			ID: fmt.Sprintf("patient%03d", p), Intervals: ivs,
		})
	}

	results, stats, err := tpminer.MineTemporalPatterns(db, tpminer.Options{
		MinSupport:   0.2,
		MaxIntervals: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d temporal patterns from %d patients in %s\n\n",
		len(results), patients, stats.Elapsed)

	fmt.Println("strongest multi-condition arrangements:")
	shown := 0
	for _, r := range results {
		if r.Pattern.NumIntervals() < 2 {
			continue
		}
		fmt.Printf("  %3d patients  %s\n", r.Support, r.Pattern.RelationSummary())
		if shown++; shown >= 10 {
			break
		}
	}

	// Verify each planted episode surfaced as a mined pattern.
	mined := make(map[string]int, len(results))
	for _, r := range results {
		mined[r.Pattern.Key()] = r.Support
	}
	fmt.Println("\nplanted episode recovery:")
	for name, tpl := range episodes {
		seq := tpminer.Sequence{Intervals: tpl}
		want, err := templatePattern(seq)
		if err != nil {
			log.Fatal(err)
		}
		if sup, ok := mined[want.Key()]; ok {
			fmt.Printf("  %-16s recovered with support %d (%s)\n", name, sup, want.RelationSummary())
		} else {
			fmt.Printf("  %-16s NOT RECOVERED (%s)\n", name, want)
		}
	}
}

// templatePattern derives the temporal pattern of a concrete template by
// mining the single-sequence database it forms at support 1 and taking
// the largest result — a public-API way to express "the arrangement of
// exactly these intervals".
func templatePattern(seq tpminer.Sequence) (tpminer.TemporalPattern, error) {
	one := &tpminer.Database{Sequences: []tpminer.Sequence{seq}}
	rs, _, err := tpminer.MineTemporalPatterns(one, tpminer.Options{MinCount: 1})
	if err != nil {
		return tpminer.TemporalPattern{}, err
	}
	best := rs[0].Pattern
	for _, r := range rs[1:] {
		if r.Pattern.Size() > best.Size() {
			best = r.Pattern
		}
	}
	return best, nil
}
