// Benchmark harness: one benchmark family per table/figure of the
// evaluation (see DESIGN.md, "Evaluation plan"). Each family reproduces
// the corresponding experiment's series points as sub-benchmarks at the
// Quick scale, so
//
//	go test -bench=Fig1a -benchmem
//
// regenerates the Fig 1a series. The aligned full tables (including the
// Paper scale) are produced by cmd/experiments, which shares all code
// with these benchmarks through internal/experiment.
package tpminer_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"tpminer/internal/baseline"
	"tpminer/internal/core"
	"tpminer/internal/experiment"
	"tpminer/internal/gen"
	"tpminer/internal/incremental"
	"tpminer/internal/interval"
	"tpminer/internal/pattern"
	"tpminer/internal/remote"
	"tpminer/internal/shard"
)

// benchScale is the workload sizing used by the whole bench suite.
var benchScale = experiment.Quick

func benchQuestDB(b *testing.B, d, c int) *interval.Database {
	b.Helper()
	cfg := gen.QuestConfig{
		NumSequences: d,
		AvgIntervals: c,
		NumSymbols:   benchScale.N,
		Seed:         benchScale.Seed,
	}
	db, _, err := gen.Quest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchOpts(minSup float64) core.Options {
	return core.Options{MinSupport: minSup, MaxIntervals: benchScale.MaxIntervals}
}

type namedTemporalMiner struct {
	name string
	mine experiment.TemporalMiner
}

var temporalMiners = []namedTemporalMiner{
	{"P-TPMiner", core.MineTemporal},
	{"TPrefixSpan", baseline.TPrefixSpan},
	{"Apriori", baseline.AprioriTemporal},
}

// BenchmarkFig1aRuntimeVsMinsup — runtime vs. minimum support for
// temporal patterns: P-TPMiner against both baselines.
func BenchmarkFig1aRuntimeVsMinsup(b *testing.B) {
	db := benchQuestDB(b, benchScale.D, benchScale.C)
	for _, m := range temporalMiners {
		for _, s := range benchScale.MinSups {
			b.Run(fmt.Sprintf("%s/minsup=%g", m.name, s), func(b *testing.B) {
				opt := benchOpts(s)
				var patterns int
				for i := 0; i < b.N; i++ {
					rs, _, err := m.mine(db, opt)
					if err != nil {
						b.Fatal(err)
					}
					patterns = len(rs)
				}
				b.ReportMetric(float64(patterns), "patterns")
			})
		}
	}
}

// BenchmarkFig1aSharded — the Fig-1a temporal workload mined through the
// scatter-gather shard coordinator at increasing shard counts, with the
// plain serial miner as the unsharded reference. shards=1 measures pure
// coordinator overhead (one worker, no merge work beyond a pass-through),
// so cmd/benchjson gates it at ≥0.95x of unsharded; higher counts show
// the multi-core scaling headroom (≈1x on a single-core runner, where
// the equivalence suite still proves the merge exact). The database is
// the largest Fig-2a point rather than the Fig-1a base: the partition-
// aware local bound is ceil(minsup·n_i), so shards need enough
// sequences for that to stay selective — 100 sequences per shard at
// shards=8, matching the shard-min-seqs guidance (a 200-sequence
// database split 8 ways would mine 25-sequence shards at bound 1,
// i.e. its full lattice).
func BenchmarkFig1aSharded(b *testing.B) {
	db := benchQuestDB(b, benchScale.DBSizes[len(benchScale.DBSizes)-1], benchScale.C)
	opt := benchOpts(0.04)
	ctx := context.Background()
	b.Run("unsharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.MineTemporal(db, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{1, 2, 4, 8} {
		co := shard.NewLocal(db, shard.New(db, k, 1))
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			var patterns int
			for i := 0; i < b.N; i++ {
				rs, _, err := co.MineTemporal(ctx, opt)
				if err != nil {
					b.Fatal(err)
				}
				patterns = len(rs)
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
	}
}

// BenchmarkFig1aRemote — the Fig-1a temporal workload mined through
// remote HTTP workers over loopback, against the in-process sharded run
// as reference. Every iteration pays the full wire cost (JSON mine
// requests and responses) but the shard push happens once per worker at
// setup — the content-addressed cache makes re-pushes free, which is
// what a warm production deployment sees. workers=N splits the shards
// across N worker servers; the gap to shards=N in BenchmarkFig1aSharded
// is the HTTP tax on this dataset.
func BenchmarkFig1aRemote(b *testing.B) {
	db := benchQuestDB(b, benchScale.DBSizes[len(benchScale.DBSizes)-1], benchScale.C)
	opt := benchOpts(0.04)
	ctx := context.Background()
	const shards = 4
	part := shard.New(db, shards, 1)
	for _, nw := range []int{1, 2, 4} {
		urls := make([]string, nw)
		for i := range urls {
			ts := httptest.NewServer(remote.NewWorkerServer(remote.WorkerConfig{}).Handler())
			defer ts.Close()
			urls[i] = ts.URL
		}
		pool := remote.NewPool(urls, remote.PoolConfig{
			Registry: remote.RegistryConfig{ProbeInterval: -1},
		})
		defer pool.Close()
		co := pool.Coordinator("bench", 1, db, part)
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			var patterns int
			for i := 0; i < b.N; i++ {
				rs, _, err := co.MineTemporal(ctx, opt)
				if err != nil {
					b.Fatal(err)
				}
				patterns = len(rs)
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
	}
}

// BenchmarkFig1bRuntimeVsMinsupCoincidence — runtime vs. minimum support
// for coincidence patterns.
func BenchmarkFig1bRuntimeVsMinsupCoincidence(b *testing.B) {
	db := benchQuestDB(b, benchScale.D, benchScale.C)
	miners := []struct {
		name string
		mine experiment.CoincMiner
	}{
		{"P-TPMiner", core.MineCoincidence},
		{"Apriori", baseline.AprioriCoincidence},
	}
	for _, m := range miners {
		for _, s := range benchScale.MinSups {
			b.Run(fmt.Sprintf("%s/minsup=%g", m.name, s), func(b *testing.B) {
				opt := benchOpts(s)
				var patterns int
				for i := 0; i < b.N; i++ {
					rs, _, err := m.mine(db, opt)
					if err != nil {
						b.Fatal(err)
					}
					patterns = len(rs)
				}
				b.ReportMetric(float64(patterns), "patterns")
			})
		}
	}
}

// BenchmarkFig2aScalabilityDBSize — runtime vs. |D| at fixed support,
// serial and 4-way-parallel P-TPMiner against TPrefixSpan.
func BenchmarkFig2aScalabilityDBSize(b *testing.B) {
	const minSup = 0.05
	for _, d := range benchScale.DBSizes {
		db := benchQuestDB(b, d, benchScale.C)
		b.Run(fmt.Sprintf("P-TPMiner/D=%d", d), func(b *testing.B) {
			opt := benchOpts(minSup)
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MineTemporal(db, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("P-TPMiner-par4/D=%d", d), func(b *testing.B) {
			opt := benchOpts(minSup)
			opt.Parallel = 4
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MineTemporal(db, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("TPrefixSpan/D=%d", d), func(b *testing.B) {
			opt := benchOpts(minSup)
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.TPrefixSpan(db, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2bScalabilitySeqLen — runtime vs. average sequence length
// |C| at fixed support.
func BenchmarkFig2bScalabilitySeqLen(b *testing.B) {
	const minSup = 0.05
	for _, c := range benchScale.SeqLens {
		db := benchQuestDB(b, benchScale.D, c)
		b.Run(fmt.Sprintf("P-TPMiner/C=%d", c), func(b *testing.B) {
			opt := benchOpts(minSup)
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MineTemporal(db, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3PruningAblation — P-TPMiner with each pruning disabled in
// turn at the lowest support of the sweep.
func BenchmarkFig3PruningAblation(b *testing.B) {
	db := benchQuestDB(b, benchScale.D, benchScale.C)
	minSup := benchScale.MinSups[len(benchScale.MinSups)-1]
	configs := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"all", func(*core.Options) {}},
		{"noP1-global", func(o *core.Options) { o.DisableGlobalPruning = true }},
		{"noP2-pair", func(o *core.Options) { o.DisablePairPruning = true }},
		{"noP3-postfix", func(o *core.Options) { o.DisablePostfixPruning = true }},
		{"noP4-size", func(o *core.Options) { o.DisableSizePruning = true }},
		{"none", func(o *core.Options) {
			o.DisableGlobalPruning = true
			o.DisablePairPruning = true
			o.DisablePostfixPruning = true
			o.DisableSizePruning = true
		}},
	}
	for _, cf := range configs {
		b.Run(cf.name, func(b *testing.B) {
			opt := benchOpts(minSup)
			cf.mut(&opt)
			var nodes int64
			for i := 0; i < b.N; i++ {
				_, st, err := core.MineTemporal(db, opt)
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkTab1Memory — allocation profile vs. minimum support; run with
// -benchmem, the B/op column is the table.
func BenchmarkTab1Memory(b *testing.B) {
	db := benchQuestDB(b, benchScale.D, benchScale.C)
	for _, m := range temporalMiners[:2] { // P-TPMiner and TPrefixSpan
		for _, s := range benchScale.MinSups {
			b.Run(fmt.Sprintf("%s/minsup=%g", m.name, s), func(b *testing.B) {
				opt := benchOpts(s)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := m.mine(db, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTab2PatternCounts — mining both pattern types on the four
// simulated real datasets.
func BenchmarkTab2PatternCounts(b *testing.B) {
	ds, err := experiment.RealDatasets(benchScale.Seed, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range ds {
		opt := core.Options{MinSupport: d.MinSup, MaxIntervals: 3}
		optC := opt
		optC.MaxElements = 3
		b.Run(d.Name+"/temporal", func(b *testing.B) {
			var patterns int
			for i := 0; i < b.N; i++ {
				rs, _, err := core.MineTemporal(d.DB, opt)
				if err != nil {
					b.Fatal(err)
				}
				patterns = len(rs)
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
		b.Run(d.Name+"/coincidence", func(b *testing.B) {
			var patterns int
			for i := 0; i < b.N; i++ {
				rs, _, err := core.MineCoincidence(d.DB, optC)
				if err != nil {
					b.Fatal(err)
				}
				patterns = len(rs)
			}
			b.ReportMetric(float64(patterns), "patterns")
		})
	}
}

// BenchmarkTab3Practicability — the full practicability pipeline: mine
// the simulated real datasets, rank the multi-interval patterns, and
// render their Allen-relation readings.
func BenchmarkTab3Practicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Tab3(benchScale.Seed, true, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty practicability table")
		}
	}
}

// BenchmarkCoreMicro — micro-benchmarks of the building blocks, for
// profiling regressions outside the experiment suite.
func BenchmarkCoreMicro(b *testing.B) {
	db := benchQuestDB(b, benchScale.D, benchScale.C)
	b.Run("EncodeDatabase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pattern.EncodeDatabase(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TransformDatabase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pattern.TransformDatabase(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	enc, err := pattern.EncodeDatabase(db)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pattern.ParseTemporal("e1+ e1- e3+ e3-")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SupportAligned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.SupportAligned(enc, p)
		}
	})
	ixs := pattern.BuildIndexes(enc)
	b.Run("SupportIndexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.SupportIndexed(ixs, p)
		}
	})
}

// BenchmarkExt1Incremental — extension: maintaining the frequent set
// over a stream of appends, incremental miner vs. re-mining every time.
func BenchmarkExt1Incremental(b *testing.B) {
	cfg := gen.QuestConfig{
		NumSequences: benchScale.D / 2,
		AvgIntervals: benchScale.C,
		NumSymbols:   benchScale.N,
		Seed:         benchScale.Seed,
	}
	db, _, err := gen.Quest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{MinSupport: 0.1, MaxIntervals: benchScale.MaxIntervals}

	b.Run("re-mine-every-append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := &interval.Database{}
			for j := range db.Sequences {
				acc.Sequences = append(acc.Sequences, db.Sequences[j])
				if _, _, err := core.MineTemporal(acc, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, mu := range []float64{1.0, 0.3} {
		b.Run(fmt.Sprintf("incremental/mu=%.1f", mu), func(b *testing.B) {
			var absorbed int
			for i := 0; i < b.N; i++ {
				m, err := incremental.NewMiner(opt, mu)
				if err != nil {
					b.Fatal(err)
				}
				for j := range db.Sequences {
					if _, err := m.Append(db.Sequences[j]); err != nil {
						b.Fatal(err)
					}
				}
				absorbed = m.Stats().IncrementalSteps
			}
			b.ReportMetric(float64(absorbed), "absorbed")
		})
	}
}
